package object

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
)

// Delete removes an object and everything that depends on it:
//
//   - all subobjects and local relationship objects, recursively ("All
//     subobjects depend on the complex object, they are deleted with the
//     complex object", §3);
//   - relationship objects in which the object (or a cascaded subobject)
//     participates;
//   - inheritance bindings in which it is the inheritor.
//
// If the object or any cascaded object is a *transmitter* with inheritors
// outside the cascade, the delete policy decides: DeleteRestrict (default)
// refuses the whole delete; DeleteUnbind detaches those inheritors and
// fires an Unbound update event for each.
func (s *Store) Delete(sur domain.Surrogate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	root, ok := s.objects[sur]
	if !ok {
		return noObject(sur)
	}
	if err := s.guardLocked(sur); err != nil {
		return err
	}

	// Phase 1: collect the cascade set.
	cascade := make(map[domain.Surrogate]bool)
	s.collectCascadeLocked(root, cascade)

	// Phase 2: policy check for transmitters with external inheritors.
	var detach []*Binding
	for member := range cascade {
		for _, b := range s.byTransmitter[member] {
			if cascade[b.Inheritor] {
				continue // inheritor dies with the cascade anyway
			}
			if s.deletePolicy == DeleteRestrict {
				return fmt.Errorf("%w: %s has inheritor %s via %s",
					ErrHasInheritors, member, b.Inheritor, b.Rel.Name)
			}
			detach = append(detach, b)
		}
	}

	// Phase 3: apply. Detach external inheritors first so the events see
	// a consistent store.
	for _, b := range detach {
		s.removeBindingLocked(b)
		s.seq++
		ev := UpdateEvent{
			Rel:         b.Rel.Name,
			Binding:     b.Obj.sur,
			Transmitter: b.Transmitter,
			Inheritor:   b.Inheritor,
			Seq:         s.seq,
			Unbound:     true,
		}
		for _, h := range s.hooks {
			h(ev)
		}
	}
	// Subclass changes visible outside the cascade are notified after the
	// removal, like any other permeable update.
	type parentSub struct {
		parent domain.Surrogate
		sub    string
	}
	var touched []parentSub
	for member := range cascade {
		o := s.objects[member]
		if o != nil && o.parent != 0 && !cascade[o.parent] {
			touched = append(touched, parentSub{o.parent, o.parentSub})
		}
	}
	for member := range cascade {
		s.removeObjectLocked(member)
	}
	s.seq++
	for _, ps := range touched {
		if po, ok := s.objects[ps.parent]; ok {
			po.modSeq = s.seq
		}
		s.notifyLocked(ps.parent, ps.sub, map[domain.Surrogate]bool{})
	}
	s.emit(&oplog.Op{Kind: oplog.KindDelete, Sur: sur})
	return nil
}

// collectCascadeLocked gathers the object, its subobject tree, its local
// relationship objects, every relationship object referencing any of
// them, and the binding objects of cascaded inheritors.
func (s *Store) collectCascadeLocked(o *Object, acc map[domain.Surrogate]bool) {
	if acc[o.sur] {
		return
	}
	acc[o.sur] = true
	for _, cls := range o.subclasses {
		for _, m := range cls.Members() {
			if mo, ok := s.objects[m]; ok {
				s.collectCascadeLocked(mo, acc)
			}
		}
	}
	for _, cls := range o.subrels {
		for _, m := range cls.Members() {
			if mo, ok := s.objects[m]; ok {
				s.collectCascadeLocked(mo, acc)
			}
		}
	}
	// Relationships referencing this object die with it.
	for rel := range s.relsByParticipant[o.sur] {
		if ro, ok := s.objects[rel]; ok {
			s.collectCascadeLocked(ro, acc)
		}
	}
	// Binding objects where this object is the inheritor are removed with
	// it (handled in removeObjectLocked via removeBindingLocked).
}

// removeObjectLocked unlinks one object from every index. Bindings are
// dissolved; classes and parents forget the member.
func (s *Store) removeObjectLocked(sur domain.Surrogate) {
	o, ok := s.objects[sur]
	if !ok {
		return
	}
	// Deleting a binding's own relationship object dissolves the binding
	// (equivalent to Unbind): drop it from both binding indexes.
	if o.isRel {
		if _, isInher := s.cat.InherRelType(o.typeName); isInher {
			if ref, ok := o.participants["Inheritor"].(domain.Ref); ok {
				if b := s.bindingLocked(domain.Surrogate(ref), o.typeName); b != nil && b.Obj == o {
					s.removeBindingLocked(b)
				}
			}
		}
	}
	// Dissolve bindings in both roles.
	if m, ok := s.byInheritor[sur]; ok {
		for _, b := range copyBindings(m) {
			s.removeBindingLocked(b)
		}
	}
	for _, b := range append([]*Binding(nil), s.byTransmitter[sur]...) {
		s.removeBindingLocked(b)
	}
	// Forget participant index entries for this object, and the reverse
	// edges its own participants hold.
	delete(s.relsByParticipant, sur)
	if o.isRel {
		for _, v := range o.participants {
			s.unindexParticipantLocked(sur, v)
		}
	}
	// Unlink from the owning class or parent.
	if o.ownerClass != "" {
		if cls, ok := s.classes[o.ownerClass]; ok {
			cls.remove(sur)
		}
	}
	if o.parent != 0 {
		if po, ok := s.objects[o.parent]; ok {
			if cls, ok := po.subclasses[o.parentSub]; ok {
				cls.remove(sur)
			}
			if cls, ok := po.subrels[o.parentSub]; ok {
				cls.remove(sur)
			}
		}
	}
	delete(s.objects, sur)
	// Routes from or through the dead object must not be served again.
	s.bumpEpochLocked()
}

func (s *Store) unindexParticipantLocked(rel domain.Surrogate, v domain.Value) {
	switch x := v.(type) {
	case domain.Ref:
		if m, ok := s.relsByParticipant[domain.Surrogate(x)]; ok {
			delete(m, rel)
			if len(m) == 0 {
				delete(s.relsByParticipant, domain.Surrogate(x))
			}
		}
	case *domain.Set:
		for _, e := range x.Elems() {
			s.unindexParticipantLocked(rel, e)
		}
	}
}

// deleteRelLocked removes a just-created relationship object again (used
// to roll back a failed where-restriction check).
func (s *Store) deleteRelLocked(o *Object) {
	s.removeObjectLocked(o.sur)
}

func copyBindings(m map[string]*Binding) []*Binding {
	out := make([]*Binding, 0, len(m))
	for _, b := range m {
		out = append(out, b)
	}
	return out
}
