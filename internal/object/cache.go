package object

import (
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
)

// Resolution cache.
//
// Reading an inherited member walks the binding chain from the inheritor
// to the object that owns the member (§4: view semantics — the value is
// never copied). The chain itself only changes on *structural* operations
// (bind, unbind, delete, class materialization), so the store memoizes the
// route — never the value — keyed by (surrogate, member name). A cache hit
// reads the owner's live attribute slot, so a transmitter update made
// after the route was memoized is visible immediately; plain attribute
// writes never invalidate, which keeps routes hot under update-heavy
// workloads.
//
// Sharding: each route lives in the cache of the shard owning its root
// surrogate and is stamped with the structure epoch of every shard its
// chain passes through. Structural operations bump only the epochs of the
// shards they affect, so a Bind in one partition does not evict routes
// confined to another. The hit path validates all stamps lock-free;
// resolution runs under a shard lock, which freezes topology store-wide
// (see the shard type), so the recorded stamps are exact.
//
// Concurrency: routes live in sync.Maps and attribute slots publish
// atomically, so the GetAttr/Members hit path takes no lock. Structural
// writers bump epochs while holding all shard write locks; a concurrent
// lock-free reader either observes a new epoch (and falls back to the
// locked slow path) or serializes before the structural operation, which
// is a legal linearization.

// routeKey addresses one memoized resolution.
type routeKey struct {
	sur  domain.Surrogate
	name string
}

// shardStamp records the structure epoch one shard had when a route was
// resolved.
type shardStamp struct {
	shard int
	epoch uint64
}

// route is one memoized resolution. For attribute routes, owner is the
// object whose own attribute slot holds the value (nil: the chain ended
// unbound, the read is null). For members routes, cls is the owner's
// materialized subclass (nil: unbound or not yet materialized, the read is
// empty). chain lists every surrogate visited from the inheritor to the
// owner, in order — transactions lock it for lock inheritance (§6).
// stamps holds one entry per distinct shard along the chain.
type route struct {
	stamps []shardStamp
	owner  *Object
	cls    *Class
	chain  []domain.Surrogate
}

// routeCacheResetThreshold bounds dead-key accumulation per shard: when an
// epoch bump finds more stored routes than this, the maps are swapped out
// whole instead of being left to revalidate lazily.
const routeCacheResetThreshold = 1 << 14

// routeCache holds one shard's attribute and members route maps. The maps
// are swappable so invalidation can drop a bloated cache in O(1).
type routeCache struct {
	attrs   atomic.Pointer[sync.Map]
	members atomic.Pointer[sync.Map]
	stored  atomic.Uint64
}

func (rc *routeCache) init() {
	rc.attrs.Store(new(sync.Map))
	rc.members.Store(new(sync.Map))
}

func (rc *routeCache) reset() {
	rc.attrs.Store(new(sync.Map))
	rc.members.Store(new(sync.Map))
	rc.stored.Store(0)
}

func loadRoute(m *atomic.Pointer[sync.Map], sur domain.Surrogate, name string) (*route, bool) {
	v, ok := m.Load().Load(routeKey{sur, name})
	if !ok {
		return nil, false
	}
	return v.(*route), true
}

// valid reports whether every shard the route's chain crosses still has
// the epoch recorded at resolution time.
func (s *Store) valid(r *route) bool {
	for _, st := range r.stamps {
		if s.shards[st.shard].epoch.Load() != st.epoch {
			return false
		}
	}
	return true
}

// stampChain collects the current epochs of the distinct shards along a
// chain. Callers hold at least one shard lock, so the epochs cannot move.
func (s *Store) stampChain(chain []domain.Surrogate) []shardStamp {
	stamps := make([]shardStamp, 0, 2)
	for _, sur := range chain {
		idx := s.shardIndex(sur)
		seen := false
		for _, st := range stamps {
			if st.shard == idx {
				seen = true
				break
			}
		}
		if !seen {
			stamps = append(stamps, shardStamp{shard: idx, epoch: s.shards[idx].epoch.Load()})
		}
	}
	return stamps
}

// loadAttrRoute returns a memoized attribute route if it is still valid
// against the epochs of every shard it crosses.
func (s *Store) loadAttrRoute(sur domain.Surrogate, name string) (*route, bool) {
	r, ok := loadRoute(&s.shardOf(sur).routes.attrs, sur, name)
	if !ok || !s.valid(r) {
		return nil, false
	}
	return r, true
}

// loadMembersRoute is loadAttrRoute for subclass resolution.
func (s *Store) loadMembersRoute(sur domain.Surrogate, name string) (*route, bool) {
	r, ok := loadRoute(&s.shardOf(sur).routes.members, sur, name)
	if !ok || !s.valid(r) {
		return nil, false
	}
	return r, true
}

// memoAttr stores an attribute route resolved under a shard lock (no
// epoch can move while any shard lock is held, so the stamps are exact).
func (s *Store) memoAttr(sur domain.Surrogate, name string, owner *Object, chain []domain.Surrogate) *route {
	r := &route{stamps: s.stampChain(chain), owner: owner, chain: chain}
	sh := s.shardOf(sur)
	sh.routes.attrs.Load().Store(routeKey{sur, name}, r)
	sh.routes.stored.Add(1)
	sh.misses.Add(1)
	return r
}

// memoMembers stores a members route resolved under a shard lock.
func (s *Store) memoMembers(sur domain.Surrogate, name string, cls *Class, chain []domain.Surrogate) *route {
	r := &route{stamps: s.stampChain(chain), cls: cls, chain: chain}
	sh := s.shardOf(sur)
	sh.routes.members.Load().Store(routeKey{sur, name}, r)
	sh.routes.stored.Add(1)
	sh.misses.Add(1)
	return r
}

// bumpEpoch invalidates every memoized route that crosses the shard.
// Callers hold all shard write locks; lock-free readers racing the bump
// either see the new epoch (slow path) or serialize before the structural
// change.
func (s *Store) bumpEpoch(sh *shard) {
	sh.epoch.Add(1)
	sh.invalidations.Add(1)
	if sh.routes.stored.Load() > routeCacheResetThreshold {
		sh.routes.reset()
	}
}

// bumpAllEpochs invalidates every route in the store (snapshot import).
func (s *Store) bumpAllEpochs() {
	for i := range s.shards {
		s.bumpEpoch(&s.shards[i])
	}
}

// ShardStats reports one shard's counters, snapshotted under its lock.
type ShardStats struct {
	Shard         int    `json:"shard"`
	Objects       int    `json:"objects"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Epoch         uint64 `json:"epoch"`
	Routes        uint64 `json:"routes"`
}

// StoreStats aggregates the resolution-cache counters across shards.
// Epoch is the sum of the per-shard structure epochs (total structural
// changes observed); PerShard carries the per-shard breakdown.
type StoreStats struct {
	Hits          uint64 // reads served from a memoized route, lock-free
	Misses        uint64 // cacheable resolutions that had to walk the chain
	Invalidations uint64 // structure-epoch bumps
	Epoch         uint64 // sum of per-shard structure epochs
	Routes        uint64 // approximate number of stored routes
	Shards        int    // shard count
	PerShard      []ShardStats
	MVCC          MVCCStats // snapshot pins and version-chain GC (mvcc.go)
}

// Stats snapshots the cache counters. Each shard's tuple is read under
// that shard's read lock, so the per-shard numbers are mutually
// consistent (the aggregate is a sum of per-shard snapshots, not a single
// store-wide freeze).
func (s *Store) Stats() StoreStats {
	st := StoreStats{Shards: len(s.shards), PerShard: make([]ShardStats, len(s.shards))}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		p := ShardStats{
			Shard:         i,
			Objects:       len(sh.objects),
			Hits:          sh.hits.Load(),
			Misses:        sh.misses.Load(),
			Invalidations: sh.invalidations.Load(),
			Epoch:         sh.epoch.Load(),
			Routes:        sh.routes.stored.Load(),
		}
		sh.mu.RUnlock()
		st.PerShard[i] = p
		st.Hits += p.Hits
		st.Misses += p.Misses
		st.Invalidations += p.Invalidations
		st.Epoch += p.Epoch
		st.Routes += p.Routes
	}
	st.MVCC = s.mvccStats()
	return st
}

// ChainStamp captures the shard epochs a resolved chain depended on.
// Transactions use it to detect a rebind between resolving a chain and
// locking it (see ResolveChainStamped).
type ChainStamp struct {
	stamps []shardStamp
}

// StampValid reports whether the chain the stamp was taken from is still
// current: no shard it crossed has seen a structural change since.
func (s *Store) StampValid(st ChainStamp) bool {
	for _, x := range st.stamps {
		if s.shards[x.shard].epoch.Load() != x.epoch {
			return false
		}
	}
	return true
}

// ResolveChain returns the surrogates visited when resolving member on
// sur: the object itself followed by each transmitter along the
// inheritance chain, ending at the member's owner. Transactions lock the
// chain (lock inheritance runs in the reverse direction of data
// inheritance, §6). Names that are not inherited — own members, unknown
// names, relationship objects — resolve to just the object itself.
func (s *Store) ResolveChain(sur domain.Surrogate, member string) ([]domain.Surrogate, error) {
	chain, _, err := s.ResolveChainStamped(sur, member)
	return chain, err
}

// ResolveChainStamped is ResolveChain plus a ChainStamp recording the
// structure epochs of every shard the chain crosses, so the caller can
// cheaply re-check (StampValid) that the chain is still current after
// acquiring locks on it.
func (s *Store) ResolveChainStamped(sur domain.Surrogate, member string) ([]domain.Surrogate, ChainStamp, error) {
	if r, ok := s.loadAttrRoute(sur, member); ok {
		s.shardOf(sur).hits.Add(1)
		return r.chain, ChainStamp{stamps: r.stamps}, nil
	}
	if r, ok := s.loadMembersRoute(sur, member); ok {
		s.shardOf(sur).hits.Add(1)
		return r.chain, ChainStamp{stamps: r.stamps}, nil
	}
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[sur]
	if !ok {
		return nil, ChainStamp{}, noObject(sur)
	}
	self := []domain.Surrogate{sur}
	selfStamp := func() ChainStamp { return ChainStamp{stamps: s.stampChain(self)} }
	if o.isRel {
		return self, selfStamp(), nil
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return self, selfStamp(), nil
	}
	if a, ok := eff.Attr(member); ok {
		if !a.Inherited() {
			return self, selfStamp(), nil
		}
		_, r, err := s.resolveAttrLocked(o, member)
		if err != nil {
			return nil, ChainStamp{}, err
		}
		return r.chain, ChainStamp{stamps: r.stamps}, nil
	}
	if sd, ok := eff.SubclassByName(member); ok {
		if !sd.Inherited() {
			return self, selfStamp(), nil
		}
		r, err := s.resolveMembersLocked(o, member)
		if err != nil || r == nil {
			return self, selfStamp(), err
		}
		return r.chain, ChainStamp{stamps: r.stamps}, nil
	}
	return self, selfStamp(), nil
}
