package object

import (
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
)

// Resolution cache.
//
// Reading an inherited member walks the binding chain from the inheritor
// to the object that owns the member (§4: view semantics — the value is
// never copied). The chain itself only changes on *structural* operations
// (bind, unbind, delete, class materialization), so the store memoizes the
// route — never the value — keyed by (surrogate, member name) and stamped
// with the structure epoch current at resolution time. A cache hit reads
// the owner's live attribute map, so a transmitter update made after the
// route was memoized is visible immediately; plain attribute writes do not
// touch the epoch, which keeps routes hot under update-heavy workloads.
//
// Concurrency: routes live in sync.Maps and attribute maps are immutable
// once published (writers replace them copy-on-write under the store
// mutex), so the GetAttr/Members hit path runs without taking any lock.
// Structural writers bump the epoch while holding the write lock; a
// concurrent lock-free reader either observes the new epoch (and falls
// back to the locked slow path) or serializes before the structural
// operation, which is a legal linearization.

// routeKey addresses one memoized resolution.
type routeKey struct {
	sur  domain.Surrogate
	name string
}

// route is one memoized resolution. For attribute routes, owner is the
// object whose own attribute map holds the value (nil: the chain ended
// unbound, the read is null). For members routes, cls is the owner's
// materialized subclass (nil: unbound or not yet materialized, the read is
// empty). chain lists every surrogate visited from the inheritor to the
// owner, in order — transactions lock it for lock inheritance (§6).
type route struct {
	epoch uint64
	owner *Object
	cls   *Class
	chain []domain.Surrogate
}

// routeCacheResetThreshold bounds dead-key accumulation: when an epoch
// bump finds more stored routes than this, the maps are swapped out whole
// instead of being left to revalidate lazily.
const routeCacheResetThreshold = 1 << 16

// routeCache holds the attribute and members route maps. The maps are
// swappable so invalidation can drop a bloated cache in O(1).
type routeCache struct {
	attrs   atomic.Pointer[sync.Map]
	members atomic.Pointer[sync.Map]
	stored  atomic.Uint64
}

func (rc *routeCache) init() {
	rc.attrs.Store(new(sync.Map))
	rc.members.Store(new(sync.Map))
}

func (rc *routeCache) reset() {
	rc.attrs.Store(new(sync.Map))
	rc.members.Store(new(sync.Map))
	rc.stored.Store(0)
}

func loadRoute(m *atomic.Pointer[sync.Map], sur domain.Surrogate, name string) (*route, bool) {
	v, ok := m.Load().Load(routeKey{sur, name})
	if !ok {
		return nil, false
	}
	return v.(*route), true
}

// loadAttrRoute returns a memoized attribute route if it is still valid
// against the current epoch.
func (s *Store) loadAttrRoute(sur domain.Surrogate, name string) (*route, bool) {
	r, ok := loadRoute(&s.routes.attrs, sur, name)
	if !ok || r.epoch != s.epoch.Load() {
		return nil, false
	}
	return r, true
}

// loadMembersRoute is loadAttrRoute for subclass resolution.
func (s *Store) loadMembersRoute(sur domain.Surrogate, name string) (*route, bool) {
	r, ok := loadRoute(&s.routes.members, sur, name)
	if !ok || r.epoch != s.epoch.Load() {
		return nil, false
	}
	return r, true
}

// memoAttr stores an attribute route resolved under the store lock (the
// epoch cannot move while any lock is held, so the stamp is exact).
func (s *Store) memoAttr(sur domain.Surrogate, name string, owner *Object, chain []domain.Surrogate) *route {
	r := &route{epoch: s.epoch.Load(), owner: owner, chain: chain}
	s.routes.attrs.Load().Store(routeKey{sur, name}, r)
	s.routes.stored.Add(1)
	s.misses.Add(1)
	return r
}

// memoMembers stores a members route resolved under the store lock.
func (s *Store) memoMembers(sur domain.Surrogate, name string, cls *Class, chain []domain.Surrogate) *route {
	r := &route{epoch: s.epoch.Load(), cls: cls, chain: chain}
	s.routes.members.Load().Store(routeKey{sur, name}, r)
	s.routes.stored.Add(1)
	s.misses.Add(1)
	return r
}

// bumpEpochLocked invalidates every memoized route. Callers hold the write
// lock; lock-free readers racing the bump either see the new epoch (slow
// path) or serialize before the structural change.
func (s *Store) bumpEpochLocked() {
	s.epoch.Add(1)
	s.invalidations.Add(1)
	if s.routes.stored.Load() > routeCacheResetThreshold {
		s.routes.reset()
	}
}

// StoreStats reports the resolution-cache counters and structure epoch.
type StoreStats struct {
	Hits          uint64 // reads served from a memoized route, lock-free
	Misses        uint64 // cacheable resolutions that had to walk the chain
	Invalidations uint64 // structure-epoch bumps
	Epoch         uint64 // current structure epoch
	Routes        uint64 // approximate number of stored routes
}

// Stats returns a snapshot of the cache counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Invalidations: s.invalidations.Load(),
		Epoch:         s.epoch.Load(),
		Routes:        s.routes.stored.Load(),
	}
}

// ResolveChain returns the surrogates visited when resolving member on
// sur: the object itself followed by each transmitter along the
// inheritance chain, ending at the member's owner. Transactions lock the
// chain (lock inheritance runs in the reverse direction of data
// inheritance, §6). Names that are not inherited — own members, unknown
// names, relationship objects — resolve to just the object itself.
func (s *Store) ResolveChain(sur domain.Surrogate, member string) ([]domain.Surrogate, error) {
	if r, ok := s.loadAttrRoute(sur, member); ok {
		s.hits.Add(1)
		return r.chain, nil
	}
	if r, ok := s.loadMembersRoute(sur, member); ok {
		s.hits.Add(1)
		return r.chain, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	self := []domain.Surrogate{sur}
	if o.isRel {
		return self, nil
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return self, nil
	}
	if a, ok := eff.Attr(member); ok {
		if !a.Inherited() {
			return self, nil
		}
		_, r, err := s.resolveAttrLocked(o, member)
		if err != nil {
			return nil, err
		}
		return r.chain, nil
	}
	if sd, ok := eff.SubclassByName(member); ok {
		if !sd.Inherited() {
			return self, nil
		}
		r, err := s.resolveMembersLocked(o, member)
		if err != nil || r == nil {
			return self, err
		}
		return r.chain, nil
	}
	return self, nil
}
