package inherit

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/object"
)

// CopyImport materializes the permeable data of a transmitter as a deep
// copy — the §2 strawman ("a local subobject in O into which C is
// copied") that the inheritance relationship replaces. It exists to make
// the paper's comparison executable (experiment E7):
//
//   - a copy import goes stale when the component changes, and nobody is
//     informed ("O is not informed when updates of the component C occur");
//   - a view (binding) is always current and carries notification
//     bookkeeping.
type CopyImport struct {
	Rel         string
	Transmitter domain.Surrogate
	Attrs       map[string]domain.Value
	// SeqAtCopy is the store sequence when the copy was taken.
	SeqAtCopy uint64
	// Bytes approximates the copied payload size (for the benchmark's
	// space accounting).
	Bytes int
}

// ImportCopy copies the members permeable through relType out of the
// transmitter. Subclass members are flattened into the attribute map as
// "<class>[i].<attr>" entries, mirroring what a copying design would
// store.
func ImportCopy(s *object.Store, relType string, transmitter domain.Surrogate) (*CopyImport, error) {
	rel, ok := s.Catalog().InherRelType(relType)
	if !ok {
		return nil, fmt.Errorf("inherit: no inheritance relationship %q", relType)
	}
	to, err := s.Get(transmitter)
	if err != nil {
		return nil, err
	}
	if to.TypeName() != rel.Transmitter {
		return nil, fmt.Errorf("inherit: %s is %q, relationship %s requires %q",
			transmitter, to.TypeName(), relType, rel.Transmitter)
	}
	ci := &CopyImport{
		Rel:         relType,
		Transmitter: transmitter,
		Attrs:       make(map[string]domain.Value),
		SeqAtCopy:   s.Seq(),
	}
	eff, _ := s.Catalog().Effective(rel.Transmitter)
	for _, m := range rel.Inheriting {
		if _, isAttr := eff.Attr(m); isAttr {
			v, err := s.GetAttr(transmitter, m)
			if err != nil {
				return nil, err
			}
			c := v.Copy()
			ci.Attrs[m] = c
			ci.Bytes += len(c.String())
			continue
		}
		members, err := s.Members(transmitter, m)
		if err != nil {
			return nil, err
		}
		for i, member := range members {
			attrs, err := attributeValues(s, member)
			if err != nil {
				return nil, err
			}
			for name, v := range attrs {
				key := fmt.Sprintf("%s[%d].%s", m, i, name)
				c := v.Copy()
				ci.Attrs[key] = c
				ci.Bytes += len(c.String())
			}
		}
	}
	return ci, nil
}

// Stale reports whether the live transmitter has diverged from the copy.
// A copying design has to recompute this by re-reading everything — which
// is exactly the cost the benchmark measures.
func (ci *CopyImport) Stale(s *object.Store) (bool, error) {
	fresh, err := ImportCopy(s, ci.Rel, ci.Transmitter)
	if err != nil {
		return false, err
	}
	if len(fresh.Attrs) != len(ci.Attrs) {
		return true, nil
	}
	for k, v := range ci.Attrs {
		fv, ok := fresh.Attrs[k]
		if !ok || !fv.Equal(v) {
			return true, nil
		}
	}
	return false, nil
}

// attributeValues reads every non-null attribute of an object's effective
// type.
func attributeValues(s *object.Store, sur domain.Surrogate) (map[string]domain.Value, error) {
	o, err := s.Get(sur)
	if err != nil {
		return nil, err
	}
	eff, ok := s.Catalog().Effective(o.TypeName())
	if !ok {
		return nil, fmt.Errorf("inherit: no effective type for %q", o.TypeName())
	}
	out := make(map[string]domain.Value)
	for _, a := range eff.Attrs {
		v, err := s.GetAttr(sur, a.Name)
		if err != nil {
			return nil, err
		}
		if !domain.IsNull(v) {
			out[a.Name] = v
		}
	}
	return out, nil
}
