package inherit

import (
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/paperschema"
)

// rig builds the full chip-design arrangement:
//
//	rootI (GateInterface_I, owns 3 pins)
//	  └─ iface (GateInterface)         via AllOf_GateInterface_I
//	       └─ impl (GateImplementation) via AllOf_GateInterface
//	            ├─ sub0, sub1 (SubGates) each bound to compIface
//	            └─ user (TimedComposite) via SomeOf_Gate
//	compI/compIface: the component gate's own two-level interface.
type rig struct {
	s                  *object.Store
	rootI, iface, impl domain.Surrogate
	compI, compIface   domain.Surrogate
	sub0, sub1, user   domain.Surrogate
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	s, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{s: s}
	must := func(sur domain.Surrogate, err error) domain.Surrogate {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sur
	}
	bind := func(rel string, inh, trans domain.Surrogate) {
		t.Helper()
		if _, err := s.Bind(rel, inh, trans); err != nil {
			t.Fatal(err)
		}
	}
	set := func(sur domain.Surrogate, name string, v domain.Value) {
		t.Helper()
		if err := s.SetAttr(sur, name, v); err != nil {
			t.Fatal(err)
		}
	}

	r.rootI = must(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	for i := 0; i < 3; i++ {
		pin := must(s.NewSubobject(r.rootI, "Pins"))
		dir := "IN"
		if i == 2 {
			dir = "OUT"
		}
		set(pin, "InOut", domain.Sym(dir))
		set(pin, "PinId", domain.Int(int64(i+1)))
	}
	r.iface = must(s.NewObject(paperschema.TypeGateInterface, ""))
	bind(paperschema.RelAllOfGateInterfaceI, r.iface, r.rootI)
	set(r.iface, "Length", domain.Int(4))
	set(r.iface, "Width", domain.Int(2))

	r.compI = must(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	r.compIface = must(s.NewObject(paperschema.TypeGateInterface, ""))
	bind(paperschema.RelAllOfGateInterfaceI, r.compIface, r.compI)
	set(r.compIface, "Length", domain.Int(2))

	r.impl = must(s.NewObject(paperschema.TypeGateImplementation, ""))
	bind(paperschema.RelAllOfGateInterface, r.impl, r.iface)
	set(r.impl, "TimeBehavior", domain.Int(10))

	r.sub0 = must(s.NewSubobject(r.impl, "SubGates"))
	bind(paperschema.RelAllOfGateInterface, r.sub0, r.compIface)
	r.sub1 = must(s.NewSubobject(r.impl, "SubGates"))
	bind(paperschema.RelAllOfGateInterface, r.sub1, r.compIface)

	r.user = must(s.NewObject(paperschema.TypeTimedComposite, ""))
	bind(paperschema.RelSomeOfGate, r.user, r.impl)
	return r
}

func contains(list []domain.Surrogate, sur domain.Surrogate) bool {
	for _, x := range list {
		if x == sur {
			return true
		}
	}
	return false
}

func TestAncestors(t *testing.T) {
	r := buildRig(t)
	anc := Ancestors(r.s, r.user)
	// user -> impl -> iface -> rootI (and nothing else: the component
	// interfaces are reached via subobjects, not via user's bindings).
	want := []domain.Surrogate{r.impl, r.iface, r.rootI}
	if len(anc) != len(want) {
		t.Fatalf("ancestors = %v, want %v", anc, want)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Errorf("ancestors[%d] = %v, want %v", i, anc[i], want[i])
		}
	}
	if got := Ancestors(r.s, r.rootI); len(got) != 0 {
		t.Errorf("hierarchy root should have no ancestors: %v", got)
	}
}

func TestDescendants(t *testing.T) {
	r := buildRig(t)
	desc := Descendants(r.s, r.rootI)
	// rootI transmits to iface, iface to impl, impl to user.
	for _, want := range []domain.Surrogate{r.iface, r.impl, r.user} {
		if !contains(desc, want) {
			t.Errorf("descendants should include %v: %v", want, desc)
		}
	}
	if contains(desc, r.sub0) {
		t.Error("sub0 inherits from compIface, not rootI")
	}
	cdesc := Descendants(r.s, r.compI)
	for _, want := range []domain.Surrogate{r.compIface, r.sub0, r.sub1} {
		if !contains(cdesc, want) {
			t.Errorf("component descendants should include %v: %v", want, cdesc)
		}
	}
}

func TestPendingAdaptationsAndAcknowledgeAll(t *testing.T) {
	r := buildRig(t)
	if p := PendingAdaptations(r.s); len(p) != 0 {
		t.Fatalf("fresh rig should be clean: %v", p)
	}
	// One interface update flags the impl binding and, via the chain, the
	// user binding (Length is permeable through SomeOf_Gate too).
	if err := r.s.SetAttr(r.iface, "Length", domain.Int(5)); err != nil {
		t.Fatal(err)
	}
	p := PendingAdaptations(r.s)
	if len(p) != 2 {
		t.Fatalf("pending = %+v, want 2", p)
	}
	inheritors := map[domain.Surrogate]bool{}
	for _, a := range p {
		inheritors[a.Inheritor] = true
		if a.Updates < 1 {
			t.Errorf("updates = %d", a.Updates)
		}
	}
	if !inheritors[r.impl] || !inheritors[r.user] {
		t.Errorf("flagged inheritors: %v", inheritors)
	}
	n, err := AcknowledgeAll(r.s)
	if err != nil || n != 2 {
		t.Fatalf("AcknowledgeAll = %d, %v", n, err)
	}
	if p := PendingAdaptations(r.s); len(p) != 0 {
		t.Errorf("still pending after acknowledge: %v", p)
	}
}

func TestVisibleComponents(t *testing.T) {
	// Experiment E4 (Figure 3/4): the component closure of the composite.
	r := buildRig(t)
	portions, err := VisibleComponents(r.s, r.impl)
	if err != nil {
		t.Fatal(err)
	}
	// impl sees: iface (via AllOf_GateInterface), rootI (via
	// AllOf_GateInterface_I through iface), compIface twice collapsed to
	// distinct bindings (sub0, sub1) -> compIface + compI.
	byObject := map[domain.Surrogate][]Portion{}
	for _, p := range portions {
		byObject[p.Object] = append(byObject[p.Object], p)
	}
	for _, want := range []domain.Surrogate{r.iface, r.rootI, r.compIface, r.compI} {
		if len(byObject[want]) == 0 {
			t.Errorf("closure should include %v: %+v", want, portions)
		}
	}
	// compIface is visible through two bindings (one per subgate).
	if got := len(byObject[r.compIface]); got != 2 {
		t.Errorf("compIface portions = %d, want 2", got)
	}
	// Portions carry the permeability list.
	for _, p := range byObject[r.iface] {
		if len(p.Members) != 3 { // Length, Width, Pins
			t.Errorf("iface portion members = %v", p.Members)
		}
	}
	if _, err := VisibleComponents(r.s, 9999); err == nil {
		t.Error("missing object should error")
	}
}

func TestExpand(t *testing.T) {
	r := buildRig(t)
	exp, err := Expand(r.s, r.user)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Object != r.user || exp.Type != paperschema.TypeTimedComposite {
		t.Errorf("root = %+v", exp)
	}
	// user -> impl -> {iface -> rootI(+3 pins), sub0 -> compIface -> compI,
	// sub1 -> ...}; pins are subobjects.
	if exp.Size() < 10 {
		t.Errorf("expansion size = %d, want >= 10", exp.Size())
	}
	leaves := exp.Leaves()
	// The pins of rootI and the component hierarchy roots are leaves.
	foundCompI := false
	for _, l := range leaves {
		if l == r.compI {
			foundCompI = true
		}
	}
	if !foundCompI {
		t.Errorf("compI should be a leaf: %v", leaves)
	}
	// Rel labels distinguish binding edges from subobject edges.
	if exp.Children[0].Rel != paperschema.RelSomeOfGate {
		t.Errorf("first child rel = %q", exp.Children[0].Rel)
	}
	if _, err := Expand(r.s, 9999); err == nil {
		t.Error("missing object should error")
	}
}

func TestImportCopyVsView(t *testing.T) {
	// Experiment E7 (§2): the copy is stale after a component update and
	// nobody tells the importer; the view is always current.
	r := buildRig(t)
	ci, err := ImportCopy(r.s, paperschema.RelAllOfGateInterface, r.iface)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Bytes <= 0 {
		t.Error("copy should account bytes")
	}
	if !ci.Attrs["Length"].Equal(domain.Int(4)) {
		t.Errorf("copied Length = %s", ci.Attrs["Length"])
	}
	// Pins are flattened into the copy.
	if _, ok := ci.Attrs["Pins[0].InOut"]; !ok {
		t.Errorf("copy should flatten pins: %v", ci.Attrs)
	}
	stale, err := ci.Stale(r.s)
	if err != nil || stale {
		t.Fatalf("fresh copy stale=%v err=%v", stale, err)
	}
	// Component update: the copy is now stale, the view is current.
	if err := r.s.SetAttr(r.iface, "Length", domain.Int(9)); err != nil {
		t.Fatal(err)
	}
	stale, err = ci.Stale(r.s)
	if err != nil || !stale {
		t.Fatalf("copy should be stale: %v err=%v", stale, err)
	}
	if !ci.Attrs["Length"].Equal(domain.Int(4)) {
		t.Error("the copy itself must keep the old value")
	}
	viewV, err := r.s.GetAttr(r.impl, "Length")
	if err != nil || !viewV.Equal(domain.Int(9)) {
		t.Errorf("view = %s, %v", viewV, err)
	}
	// Pin-level updates are caught by the staleness check too.
	pins, _ := r.s.Members(r.rootI, "Pins")
	if err := r.s.SetAttr(pins[0], "PinId", domain.Int(99)); err != nil {
		t.Fatal(err)
	}
	ci2, _ := ImportCopy(r.s, paperschema.RelAllOfGateInterface, r.iface)
	if err := r.s.SetAttr(pins[0], "PinId", domain.Int(77)); err != nil {
		t.Fatal(err)
	}
	stale, _ = ci2.Stale(r.s)
	if !stale {
		t.Error("pin update should stale the copy")
	}
}

func TestImportCopyErrors(t *testing.T) {
	r := buildRig(t)
	if _, err := ImportCopy(r.s, "Ghost", r.iface); err == nil {
		t.Error("unknown rel should error")
	}
	if _, err := ImportCopy(r.s, paperschema.RelAllOfGateInterface, r.impl); err == nil {
		t.Error("wrong transmitter type should error")
	}
	if _, err := ImportCopy(r.s, paperschema.RelAllOfGateInterface, 9999); err == nil {
		t.Error("missing transmitter should error")
	}
}

func TestPermeabilityTailoring(t *testing.T) {
	// Experiment E5: SomeOf_Gate exports TimeBehavior, AllOf_GateInterface
	// does not exist past the implementation; Function stays private.
	r := buildRig(t)
	v, err := r.s.GetAttr(r.user, "TimeBehavior")
	if err != nil || !v.Equal(domain.Int(10)) {
		t.Errorf("TimeBehavior through SomeOf_Gate = %s, %v", v, err)
	}
	if _, err := r.s.GetAttr(r.user, "Function"); err == nil {
		t.Error("Function must not be visible through SomeOf_Gate")
	}
	// The interface data still flows: Length via impl via iface.
	if v, _ := r.s.GetAttr(r.user, "Length"); !v.Equal(domain.Int(4)) {
		t.Errorf("Length through the chain = %s", v)
	}
	// Pins flow three levels: rootI -> iface -> impl -> user.
	pins, err := r.s.Members(r.user, "Pins")
	if err != nil || len(pins) != 3 {
		t.Errorf("user pins = %v, %v", pins, err)
	}
}
