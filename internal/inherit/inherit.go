// Package inherit provides the higher-level inheritance semantics on top
// of the object store's bindings: abstraction-hierarchy traversal (§4.2),
// adaptation bookkeeping reports (§2), the component-closure ("expansion")
// of composite objects (§6), and a materialized copy-import mode that
// reproduces the copy-vs-view comparison of §2 for the benchmark harness.
package inherit

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/schema"
)

// Source is the read surface the traversals run against. Both the live
// *object.Store and a pinned *object.Snapshot satisfy it, so every
// report in this package can be computed either against the moving
// present or against a consistent sequence point while writers proceed.
type Source interface {
	Get(sur domain.Surrogate) (*object.Object, error)
	GetAttr(sur domain.Surrogate, name string) (domain.Value, error)
	Members(sur domain.Surrogate, name string) ([]domain.Surrogate, error)
	Surrogates() []domain.Surrogate
	Catalog() *schema.Catalog
	BindingsOfInheritor(inheritor domain.Surrogate) map[string]*object.Binding
	BindingsOfTransmitter(transmitter domain.Surrogate) []*object.Binding
}

var (
	_ Source = (*object.Store)(nil)
	_ Source = (*object.Snapshot)(nil)
)

// Ancestors returns the abstraction hierarchy above an object: every
// transmitter reachable by walking bindings upward, in breadth-first
// order starting with the direct transmitters. For a gate implementation
// this is [its interface, the interface's super-interface, ...].
func Ancestors(s Source, sur domain.Surrogate) []domain.Surrogate {
	var out []domain.Surrogate
	seen := map[domain.Surrogate]bool{sur: true}
	frontier := []domain.Surrogate{sur}
	for len(frontier) > 0 {
		var next []domain.Surrogate
		for _, cur := range frontier {
			bs := s.BindingsOfInheritor(cur)
			for _, rel := range sortedKeys(bs) {
				t := bs[rel].Transmitter
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return out
}

// Descendants returns every inheritor reachable by walking bindings
// downward: all implementations and composites whose data depends on this
// object, in breadth-first order.
func Descendants(s Source, sur domain.Surrogate) []domain.Surrogate {
	var out []domain.Surrogate
	seen := map[domain.Surrogate]bool{sur: true}
	frontier := []domain.Surrogate{sur}
	for len(frontier) > 0 {
		var next []domain.Surrogate
		for _, cur := range frontier {
			for _, b := range s.BindingsOfTransmitter(cur) {
				if !seen[b.Inheritor] {
					seen[b.Inheritor] = true
					out = append(out, b.Inheritor)
					next = append(next, b.Inheritor)
				}
			}
		}
		frontier = next
	}
	return out
}

// Adaptation reports one binding whose inheritor side has not yet adapted
// to a transmitter change.
type Adaptation struct {
	Rel         string
	Inheritor   domain.Surrogate
	Transmitter domain.Surrogate
	Updates     int64 // total permeable transmitter updates so far
}

// PendingAdaptations scans the source for bindings flagged by the
// notification bookkeeping (§2: informing the user that adaptations are
// necessary). Results are ordered by inheritor surrogate. The flag is
// read through GetAttr rather than the binding's live bookkeeping, so a
// snapshot source reports the adaptations that were pending at its
// sequence point, not at scan time.
func PendingAdaptations(s Source) []Adaptation {
	var out []Adaptation
	for _, sur := range s.Surrogates() {
		bs := s.BindingsOfInheritor(sur)
		for _, rel := range sortedKeys(bs) {
			b := bs[rel]
			lastV, err := s.GetAttr(b.Obj.Surrogate(), object.AttrLastUpdateSeq)
			if err != nil {
				continue
			}
			ackV, err := s.GetAttr(b.Obj.Surrogate(), object.AttrAcknowledgedSeq)
			if err != nil {
				continue
			}
			last, _ := domain.AsInt(lastV)
			ack, _ := domain.AsInt(ackV)
			if last <= ack {
				continue
			}
			n, _ := s.GetAttr(b.Obj.Surrogate(), object.AttrTransmitterUpdates)
			updates, _ := domain.AsInt(n)
			out = append(out, Adaptation{
				Rel:         rel,
				Inheritor:   sur,
				Transmitter: b.Transmitter,
				Updates:     updates,
			})
		}
	}
	return out
}

// AcknowledgeAll clears every pending adaptation and reports how many
// bindings it acknowledged.
func AcknowledgeAll(s *object.Store) (int, error) {
	pending := PendingAdaptations(s)
	for _, a := range pending {
		if err := s.Acknowledge(a.Rel, a.Inheritor); err != nil {
			return 0, err
		}
	}
	return len(pending), nil
}

// Portion names the part of a transmitter that is visible in a composite:
// the permeable members of one binding. The transaction manager locks
// exactly these portions ("the parts of the component which are visible
// in the composite object have to be read-locked", §6).
type Portion struct {
	Object  domain.Surrogate // the transmitter
	Rel     string           // the relationship through which it is visible
	Members []string         // permeable attributes and subclasses
}

// VisibleComponents computes the component closure of a composite object:
// for the object itself and every subobject (recursively), each binding
// contributes the visible portion of its transmitter; transmitters are
// expanded recursively (an interface whose data flows from a
// super-interface contributes that portion too). The result is
// deterministic: ordered by (object, rel).
func VisibleComponents(s Source, root domain.Surrogate) ([]Portion, error) {
	o, err := s.Get(root)
	if err != nil {
		return nil, err
	}
	_ = o
	var out []Portion
	seenBinding := make(map[domain.Surrogate]bool)
	var visitObject func(sur domain.Surrogate) error
	visitObject = func(sur domain.Surrogate) error {
		bs := s.BindingsOfInheritor(sur)
		for _, rel := range sortedKeys(bs) {
			b := bs[rel]
			if seenBinding[b.Obj.Surrogate()] {
				continue
			}
			seenBinding[b.Obj.Surrogate()] = true
			out = append(out, Portion{
				Object:  b.Transmitter,
				Rel:     rel,
				Members: append([]string(nil), b.Rel.Inheriting...),
			})
			if err := visitObject(b.Transmitter); err != nil {
				return err
			}
		}
		// Recurse into subobjects (own subclasses only; inherited
		// subclasses belong to the transmitter, already covered).
		subs, err := subobjectsOf(s, sur)
		if err != nil {
			return err
		}
		for _, sub := range subs {
			if err := visitObject(sub); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visitObject(root); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Rel < out[j].Rel
	})
	return out, nil
}

// subobjectsOf lists the members of every own (non-inherited) subclass and
// sub-relationship of an object.
func subobjectsOf(s Source, sur domain.Surrogate) ([]domain.Surrogate, error) {
	o, err := s.Get(sur)
	if err != nil {
		return nil, err
	}
	cat := s.Catalog()
	var names []string
	if o.IsRelationship() {
		if rt, ok := cat.RelType(o.TypeName()); ok {
			for _, sc := range rt.Subclasses {
				names = append(names, sc.Name)
			}
			for _, sr := range rt.SubRels {
				names = append(names, sr.Name)
			}
		}
	} else {
		eff, ok := cat.Effective(o.TypeName())
		if !ok {
			return nil, fmt.Errorf("inherit: no effective type for %q", o.TypeName())
		}
		for _, sc := range eff.Subclasses {
			if !sc.Inherited() {
				names = append(names, sc.Name)
			}
		}
		for _, sr := range eff.Type.SubRels {
			names = append(names, sr.Name)
		}
	}
	var out []domain.Surrogate
	for _, n := range names {
		members, err := s.Members(sur, n)
		if err != nil {
			return nil, err
		}
		out = append(out, members...)
	}
	return out, nil
}

// Expansion is the materialized component tree of a composite object
// (§6: seeing "a composite object with some or all of its components
// materialized").
type Expansion struct {
	Object domain.Surrogate
	Type   string
	Rel    string // relationship from the parent node ("" at the root,
	// "sub:<class>" for subobjects, otherwise the inher-rel-type)
	Children []*Expansion
}

// Size counts the nodes of the expansion.
func (e *Expansion) Size() int {
	n := 1
	for _, c := range e.Children {
		n += c.Size()
	}
	return n
}

// Leaves returns the expansion's leaf objects (the heavily shared
// standard parts at the bottom of component hierarchies).
func (e *Expansion) Leaves() []domain.Surrogate {
	if len(e.Children) == 0 {
		return []domain.Surrogate{e.Object}
	}
	var out []domain.Surrogate
	for _, c := range e.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Expand builds the expansion tree of a composite: subobjects as
// "sub:<class>" children and bound transmitters as inher-rel children.
// Shared components appear once per usage path but cycles are impossible
// (bindings are acyclic).
func Expand(s Source, root domain.Surrogate) (*Expansion, error) {
	o, err := s.Get(root)
	if err != nil {
		return nil, err
	}
	node := &Expansion{Object: root, Type: o.TypeName()}
	bs := s.BindingsOfInheritor(root)
	for _, rel := range sortedKeys(bs) {
		child, err := Expand(s, bs[rel].Transmitter)
		if err != nil {
			return nil, err
		}
		child.Rel = rel
		node.Children = append(node.Children, child)
	}
	subs, err := subobjectsOf(s, root)
	if err != nil {
		return nil, err
	}
	for _, sub := range subs {
		child, err := Expand(s, sub)
		if err != nil {
			return nil, err
		}
		so, _ := s.Get(sub)
		child.Rel = "sub:" + so.ParentSubclass()
		node.Children = append(node.Children, child)
	}
	return node, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
