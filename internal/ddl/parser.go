package ddl

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/schema"
)

// Parse parses a DDL source text into a fresh, validated catalog.
func Parse(src string) (*schema.Catalog, error) {
	cat := schema.NewCatalog()
	if err := ParseInto(src, cat); err != nil {
		return nil, err
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	return cat, nil
}

// ParseInto parses declarations into an existing (unvalidated) catalog,
// allowing schemas to be assembled from several sources before one final
// Validate.
func ParseInto(src string, cat *schema.Catalog) error {
	p := &parser{lex: &lexer{src: src}, cat: cat}
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tEOF {
		if err := p.parseDecl(); err != nil {
			return err
		}
	}
	return nil
}

type parser struct {
	lex *lexer
	cat *schema.Catalog
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Src: p.lex.src, Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) is(text string) bool {
	return (p.tok.kind == tIdent || p.tok.kind == tPunct) && p.tok.text == text
}

func (p *parser) accept(text string) (bool, error) {
	if p.is(text) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expect(text string) error {
	ok, err := p.accept(text)
	if err != nil {
		return err
	}
	if !ok {
		return p.errf("expected %q, found %q", text, p.tok.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected identifier, found %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

// identList parses "A, B, C".
func (p *parser) identList() ([]string, error) {
	var names []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		ok, err := p.accept(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			return names, nil
		}
	}
}

func (p *parser) parseDecl() error {
	switch {
	case p.is("domain"):
		return p.parseDomain()
	case p.is("obj-type"):
		return p.parseObjType()
	case p.is("rel-type"):
		return p.parseRelType()
	case p.is("inher-rel-type"):
		return p.parseInherRelType()
	default:
		return p.errf("expected declaration, found %q", p.tok.text)
	}
}

// parseDomain handles: domain Name = <domainExpr> ; and the paper's
// "domain AreaDom = record: ... end-domain AreaDom;" form.
func (p *parser) parseDomain() error {
	if err := p.advance(); err != nil { // domain
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	var d *domain.Domain
	if p.is("record") {
		if err := p.advance(); err != nil {
			return err
		}
		if _, err := p.accept(":"); err != nil {
			return err
		}
		fields, err := p.parseFieldList(func() bool { return p.is("end-domain") })
		if err != nil {
			return err
		}
		d = domain.Record(name, fields...)
		if err := p.expect("end-domain"); err != nil {
			return err
		}
		// Optional trailing name.
		if p.tok.kind == tIdent {
			if err := p.advance(); err != nil {
				return err
			}
		}
	} else {
		d, err = p.parseDomainExpr()
		if err != nil {
			return err
		}
		d = d.Named(name)
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	return p.cat.AddDomain(d.Named(name))
}

// parseDomainExpr parses a domain reference or constructor.
func (p *parser) parseDomainExpr() (*domain.Domain, error) {
	switch {
	case p.is("integer"):
		return domain.Integer(), p.advance()
	case p.is("real"):
		return domain.Real(), p.advance()
	case p.is("string"), p.is("char"): // the paper uses char for strings
		return domain.String_(), p.advance()
	case p.is("boolean"):
		return domain.Boolean(), p.advance()
	case p.is("list-of"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		elem, err := p.parseDomainExpr()
		if err != nil {
			return nil, err
		}
		return domain.ListOf(elem), nil
	case p.is("set-of"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		elem, err := p.parseDomainExpr()
		if err != nil {
			return nil, err
		}
		return domain.SetOf(elem), nil
	case p.is("matrix-of"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		elem, err := p.parseDomainExpr()
		if err != nil {
			return nil, err
		}
		return domain.MatrixOf(elem), nil
	case p.is("object-of-type"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return domain.ObjectRef(name), nil
	case p.is("object"):
		return domain.ObjectRef(""), p.advance()
	case p.is("("):
		return p.parseParenDomain()
	case p.tok.kind == tIdent:
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d, ok := p.cat.Domain(name)
		if !ok {
			return nil, p.errf("unknown domain %q", name)
		}
		return d, nil
	default:
		return nil, p.errf("expected domain, found %q", p.tok.text)
	}
}

// parseParenDomain disambiguates "(IN, OUT)" (enum) from
// "(X, Y: integer)" / "( PinId: integer; InOut: IO; )" (record).
func (p *parser) parseParenDomain() (*domain.Domain, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	// Collect the first identifier group to see whether a ':' follows.
	names, err := p.identList()
	if err != nil {
		return nil, err
	}
	if p.is(")") {
		// Pure enum: (IN, OUT).
		if err := p.advance(); err != nil {
			return nil, err
		}
		if dup := firstDuplicate(names); dup != "" {
			return nil, p.errf("duplicate enum symbol %q", dup)
		}
		return domain.Enum("", names...), nil
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	dom, err := p.parseDomainExpr()
	if err != nil {
		return nil, err
	}
	var fields []domain.Field
	for _, n := range names {
		fields = append(fields, domain.Field{Name: n, Dom: dom})
	}
	// Further groups, separated by ';' (a trailing ';' before ')' is ok).
	for {
		if ok, err := p.accept(";"); err != nil {
			return nil, err
		} else if !ok {
			break
		}
		if p.is(")") {
			break
		}
		names, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		dom, err := p.parseDomainExpr()
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			fields = append(fields, domain.Field{Name: n, Dom: dom})
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if dup := firstDuplicateField(fields); dup != "" {
		return nil, p.errf("duplicate record field %q", dup)
	}
	return domain.Record("", fields...), nil
}

func firstDuplicate(names []string) string {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return n
		}
		seen[n] = true
	}
	return ""
}

func firstDuplicateField(fields []domain.Field) string {
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if seen[f.Name] {
			return f.Name
		}
		seen[f.Name] = true
	}
	return ""
}

// parseFieldList parses "Name, Name: domain;"* until stop() holds.
func (p *parser) parseFieldList(stop func() bool) ([]domain.Field, error) {
	var fields []domain.Field
	for !stop() {
		names, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		dom, err := p.parseDomainExpr()
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			fields = append(fields, domain.Field{Name: n, Dom: dom})
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if dup := firstDuplicateField(fields); dup != "" {
		return nil, p.errf("duplicate record field %q", dup)
	}
	return fields, nil
}
