// Package ddl parses the paper's schema definition syntax — domain,
// obj-type, rel-type and inher-rel-type declarations — into a validated
// schema catalog:
//
//	obj-type GateInterface =
//	   inheritor-in: AllOf_GateInterface_I;
//	   attributes:
//	      Length, Width: integer;
//	end GateInterface;
//
// Two documented normalizations against the paper's loose pseudocode:
// identifiers use [A-Za-z_][A-Za-z0-9_]* (so the paper's "I/O" becomes
// "IO"), and an inline subclass body consists of `inheritor-in:` and/or
// `attributes:` sections (ended by the next subclass, the next outer
// section, or `end`). Constraint and where-clause bodies are captured
// verbatim and handed to the expression parser.
package ddl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF   tokKind = iota
	tIdent         // identifier or hyphenated keyword (obj-type, set-of, ...)
	tInt
	tString
	tPunct // = : ; , ( ) < *
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// Error is a DDL syntax or semantic error with position info.
type Error struct {
	Src string
	Pos int
	Msg string
}

func (e *Error) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Src); i++ {
		if e.Src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("ddl: %s at %d:%d", e.Msg, line, col)
}

// hyphenated keywords of the DDL; a '-' continues an identifier only when
// it produces one of these (longest match), so constraint bodies with
// subtraction still capture correctly.
var hyphenKeywords = map[string]bool{
	"obj-type":            true,
	"rel-type":            true,
	"inher-rel-type":      true,
	"end-domain":          true,
	"set-of":              true,
	"list-of":             true,
	"matrix-of":           true,
	"object-of-type":      true,
	"inheritor-in":        true,
	"types-of-subclasses": true,
	"types-of-subrels":    true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) error(pos int, format string, args ...any) error {
	return &Error{Src: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.error(l.pos, "unterminated comment")
			}
			l.pos += end + 4
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// next scans one token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := rune(l.src[l.pos])
	switch {
	case isIdentStart(c):
		return l.lexIdent(), nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tInt, text: l.src[start:l.pos], pos: start}, nil
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.error(start, "unterminated string")
		}
		l.pos++
		return token{kind: tString, text: l.src[start+1 : l.pos-1], pos: start}, nil
	case strings.ContainsRune("=:;,()<>*+-/#.", c):
		l.pos++
		return token{kind: tPunct, text: string(c), pos: start}, nil
	default:
		return token{}, l.error(l.pos, "unexpected character %q", c)
	}
}

// lexIdent scans an identifier, greedily extending across '-' only when
// the extension forms a known hyphenated keyword.
func (l *lexer) lexIdent() token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	// Try to extend over hyphens into a keyword.
	for l.pos < len(l.src) && l.src[l.pos] == '-' {
		probe := l.pos + 1
		for probe < len(l.src) && isIdentPart(rune(l.src[probe])) {
			probe++
		}
		if candidate := l.src[start:probe]; prefixOfHyphenKeyword(candidate) {
			l.pos = probe
		} else {
			break
		}
	}
	return token{kind: tIdent, text: l.src[start:l.pos], pos: start}
}

func prefixOfHyphenKeyword(s string) bool {
	if hyphenKeywords[s] {
		return true
	}
	for k := range hyphenKeywords {
		if strings.HasPrefix(k, s+"-") {
			return true
		}
	}
	return false
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// captureUntilSemicolon returns the raw source from the current position
// up to (not including) the next ';' at parenthesis depth 0, advancing
// past it. Used for constraint and where-clause bodies.
func (l *lexer) captureUntilSemicolon() (string, error) {
	if err := l.skipSpace(); err != nil {
		return "", err
	}
	start := l.pos
	depth := 0
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '(':
			depth++
		case ')':
			depth--
		case ';':
			if depth == 0 {
				body := strings.TrimSpace(l.src[start:l.pos])
				l.pos++
				return body, nil
			}
		case '/':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
				end := strings.Index(l.src[l.pos+2:], "*/")
				if end < 0 {
					return "", l.error(l.pos, "unterminated comment")
				}
				l.pos += end + 3
			}
		}
		l.pos++
	}
	return "", l.error(start, "missing ';' after expression")
}
