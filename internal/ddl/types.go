package ddl

import (
	"cadcam/internal/schema"
)

// section keywords that structure type bodies.
func isSectionKeyword(s string) bool {
	switch s {
	case "attributes", "types-of-subclasses", "types-of-subrels",
		"connections", "constraints", "inheritor-in", "relates",
		"transmitter", "inheritor", "inheriting", "end":
		return true
	}
	return false
}

// parseObjType handles obj-type declarations.
func (p *parser) parseObjType() error {
	if err := p.advance(); err != nil { // obj-type
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	t := &schema.ObjectType{Name: name}
	if err := p.parseTypeBody(t); err != nil {
		return err
	}
	if err := p.parseEnd(name); err != nil {
		return err
	}
	return p.cat.AddObjectType(t)
}

// parseTypeBody parses the shared section structure of obj-types and the
// inline member types of subclasses.
func (p *parser) parseTypeBody(t *schema.ObjectType) error {
	for {
		switch {
		case p.is("inheritor-in"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expect(":"); err != nil {
				return err
			}
			names, err := p.identList()
			if err != nil {
				return err
			}
			t.InheritorIn = append(t.InheritorIn, names...)
			if err := p.expect(";"); err != nil {
				return err
			}
		case p.is("attributes"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expect(":"); err != nil {
				return err
			}
			attrs, err := p.parseAttrSection()
			if err != nil {
				return err
			}
			t.Attributes = append(t.Attributes, attrs...)
		case p.is("types-of-subclasses"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expect(":"); err != nil {
				return err
			}
			subs, err := p.parseSubclassSection()
			if err != nil {
				return err
			}
			t.Subclasses = append(t.Subclasses, subs...)
		case p.is("types-of-subrels"), p.is("connections"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expect(":"); err != nil {
				return err
			}
			srs, err := p.parseSubRelSection()
			if err != nil {
				return err
			}
			t.SubRels = append(t.SubRels, srs...)
		case p.is("constraints"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expect(":"); err != nil {
				return err
			}
			cs, err := p.parseConstraintSection()
			if err != nil {
				return err
			}
			t.Constraints = append(t.Constraints, cs...)
		default:
			return nil
		}
	}
}

// parseAttrSection parses "Name, Name: domain;"* until the next section
// keyword or end.
func (p *parser) parseAttrSection() ([]schema.Attribute, error) {
	var out []schema.Attribute
	for p.tok.kind == tIdent && !isSectionKeyword(p.tok.text) {
		names, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		dom, err := p.parseDomainExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		for _, n := range names {
			out = append(out, schema.Attribute{Name: n, Domain: dom})
		}
	}
	return out, nil
}

// parseSubclassSection parses subclass declarations: either
// "Name: MemberType;" or an inline member type
// "Name: inheritor-in: R; attributes: ...".
func (p *parser) parseSubclassSection() ([]schema.Subclass, error) {
	var out []schema.Subclass
	for p.tok.kind == tIdent && !isSectionKeyword(p.tok.text) {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		if p.is("inheritor-in") || p.is("attributes") {
			inline := &schema.ObjectType{}
			if err := p.parseInlineBody(inline); err != nil {
				return nil, err
			}
			out = append(out, schema.Subclass{Name: name, Inline: inline})
			continue
		}
		elem, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		out = append(out, schema.Subclass{Name: name, ElemType: elem})
	}
	return out, nil
}

// parseInlineBody parses the inline member-type sections of a subclass:
// only inheritor-in and attributes are allowed (the documented
// normalization).
func (p *parser) parseInlineBody(t *schema.ObjectType) error {
	for {
		switch {
		case p.is("inheritor-in"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expect(":"); err != nil {
				return err
			}
			names, err := p.identList()
			if err != nil {
				return err
			}
			t.InheritorIn = append(t.InheritorIn, names...)
			if err := p.expect(";"); err != nil {
				return err
			}
		case p.is("attributes"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expect(":"); err != nil {
				return err
			}
			attrs, err := p.parseAttrSection()
			if err != nil {
				return err
			}
			t.Attributes = append(t.Attributes, attrs...)
		default:
			return nil
		}
	}
}

// parseSubRelSection parses "Name: RelType [where <expr>];"*.
func (p *parser) parseSubRelSection() ([]schema.SubRel, error) {
	var out []schema.SubRel
	for p.tok.kind == tIdent && !isSectionKeyword(p.tok.text) {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		relType, err := p.ident()
		if err != nil {
			return nil, err
		}
		sr := schema.SubRel{Name: name, RelType: relType}
		if p.is("where") {
			// Capture the raw body up to ';' and parse it as an
			// expression. The lexer position sits just past "where"'s
			// token start, so capture from the current scanner state.
			if err := p.captureWhere(&sr); err != nil {
				return nil, err
			}
		} else if err := p.expect(";"); err != nil {
			return nil, err
		}
		out = append(out, sr)
	}
	return out, nil
}

// captureWhere grabs the where-expression body verbatim. The current
// token is "where"; the raw capture starts at the scanner position (just
// after "where") and the next token is read after the ';'.
func (p *parser) captureWhere(sr *schema.SubRel) error {
	wherePos := p.tok.pos
	body, err := p.lex.captureUntilSemicolon()
	if err != nil {
		return err
	}
	c, err := schema.NewConstraint(body)
	if err != nil {
		return &Error{Src: p.lex.src, Pos: wherePos, Msg: err.Error()}
	}
	sr.Where = &c
	return p.advance()
}

// parseConstraintSection captures ";"-terminated expressions until a
// section keyword or "end". The current token starts the first
// constraint, so its text is prepended to the raw capture.
func (p *parser) parseConstraintSection() ([]schema.Constraint, error) {
	var out []schema.Constraint
	for !p.is("end") && p.tok.kind != tEOF && !isSectionKeyword(p.tok.text) {
		startPos := p.tok.pos
		// Re-scan from the token start: move the lexer back.
		p.lex.pos = startPos
		body, err := p.lex.captureUntilSemicolon()
		if err != nil {
			return nil, err
		}
		c, err := schema.NewConstraint(body)
		if err != nil {
			return nil, &Error{Src: p.lex.src, Pos: startPos, Msg: err.Error()}
		}
		out = append(out, c)
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parseEnd consumes "end [Name] ;".
func (p *parser) parseEnd(name string) error {
	if err := p.expect("end"); err != nil {
		return err
	}
	if p.tok.kind == tIdent && !isSectionKeyword(p.tok.text) {
		if p.tok.text != name {
			return p.errf("end %q does not match declaration %q", p.tok.text, name)
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	return p.expect(";")
}

// parseRelType handles rel-type declarations.
func (p *parser) parseRelType() error {
	if err := p.advance(); err != nil { // rel-type
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	t := &schema.RelType{Name: name}
	if err := p.expect("relates"); err != nil {
		return err
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	// Participants: "Name, Name: [set-of] object-of-type T;" until a
	// section keyword.
	for p.tok.kind == tIdent && !isSectionKeyword(p.tok.text) {
		names, err := p.identList()
		if err != nil {
			return err
		}
		if err := p.expect(":"); err != nil {
			return err
		}
		setOf := false
		if ok, err := p.accept("set-of"); err != nil {
			return err
		} else if ok {
			setOf = true
		}
		var typeName string
		switch {
		case p.is("object-of-type"):
			if err := p.advance(); err != nil {
				return err
			}
			typeName, err = p.ident()
			if err != nil {
				return err
			}
		case p.is("object"):
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return p.errf("expected object or object-of-type, found %q", p.tok.text)
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		for _, n := range names {
			t.Participants = append(t.Participants, schema.Participant{Name: n, Type: typeName, SetOf: setOf})
		}
	}
	// Remaining sections share the obj-type body structure.
	body := &schema.ObjectType{}
	if err := p.parseTypeBody(body); err != nil {
		return err
	}
	t.Attributes = body.Attributes
	t.Subclasses = body.Subclasses
	t.SubRels = body.SubRels
	t.Constraints = body.Constraints
	if len(body.InheritorIn) > 0 {
		return p.errf("rel-type %s cannot be an inheritor", name)
	}
	if err := p.parseEnd(name); err != nil {
		return err
	}
	return p.cat.AddRelType(t)
}

// parseInherRelType handles inher-rel-type declarations.
func (p *parser) parseInherRelType() error {
	if err := p.advance(); err != nil { // inher-rel-type
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	t := &schema.InherRelType{Name: name}
	if err := p.expect("transmitter"); err != nil {
		return err
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	if err := p.expect("object-of-type"); err != nil {
		return err
	}
	t.Transmitter, err = p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if err := p.expect("inheritor"); err != nil {
		return err
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	switch {
	case p.is("object-of-type"):
		if err := p.advance(); err != nil {
			return err
		}
		t.Inheritor, err = p.ident()
		if err != nil {
			return err
		}
	case p.is("object"):
		if err := p.advance(); err != nil {
			return err
		}
	default:
		return p.errf("expected object or object-of-type, found %q", p.tok.text)
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if err := p.expect("inheriting"); err != nil {
		return err
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	t.Inheriting, err = p.identList()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	// Optional attribute and constraint sections for the relationship.
	body := &schema.ObjectType{}
	if err := p.parseTypeBody(body); err != nil {
		return err
	}
	t.Attributes = body.Attributes
	t.Constraints = body.Constraints
	if len(body.Subclasses) > 0 || len(body.SubRels) > 0 {
		return p.errf("inher-rel-type %s supports attributes and constraints only", name)
	}
	if err := p.parseEnd(name); err != nil {
		return err
	}
	return p.cat.AddInherRelType(t)
}
