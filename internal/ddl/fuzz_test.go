package ddl

import (
	"strings"
	"testing"
)

// FuzzParse drives the DDL parser with mutated schema text: it must never
// panic, and whatever it accepts must validate into a well-formed catalog.
// (The full PaperDDL corpus is deliberately not a seed: the fuzz engine
// mutates large seeds very slowly; the corpus is exercised by the regular
// tests instead.)
func FuzzParse(f *testing.F) {
	f.Add("domain IO = (IN, OUT);")
	f.Add("obj-type X = attributes: A: integer; end X;")
	f.Add("rel-type R = relates: P: object; end R;")
	f.Add(`inher-rel-type R =
	   transmitter: object-of-type T;
	   inheritor: object;
	   inheriting: A;
	end R;`)
	f.Add("obj-type X = constraints: count (P) = 2 where P.D = IN; end X;")
	f.Add("domain A = record: F: integer; end-domain A;")
	f.Add("/* comment */ -- line")
	f.Add("obj-type X = types-of-subclasses: S: inheritor-in: R; end X;")
	f.Fuzz(func(t *testing.T, src string) {
		cat, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must produce a validated catalog whose types all
		// have effective forms.
		for _, name := range cat.ObjectTypeNames() {
			if _, ok := cat.Effective(name); !ok {
				t.Fatalf("accepted %q but no effective type for %q", src, name)
			}
		}
	})
}

// FuzzLexerCapture targets the raw-capture path (constraints and where
// clauses) with tricky nesting.
func FuzzLexerCapture(f *testing.F) {
	f.Add("obj-type X = constraints: (a; b) = 1; end X;")
	f.Add("obj-type X = constraints: count((x)); end X;")
	f.Add("obj-type X = constraints: a /* ; */ = 1; end X;")
	f.Fuzz(func(t *testing.T, src string) {
		if !strings.Contains(src, "constraints") {
			return
		}
		_, _ = Parse(src)
	})
}
