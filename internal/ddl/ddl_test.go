package ddl

import (
	"os"
	"strings"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
	"cadcam/internal/schema"
)

func parsePaper(t *testing.T) *schema.Catalog {
	t.Helper()
	src, err := os.ReadFile("testdata/paper.ddl")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Parse(string(src))
	if err != nil {
		t.Fatalf("Parse(paper.ddl): %v", err)
	}
	return cat
}

func TestParsePaperCorpus(t *testing.T) {
	// Experiment E11: every type definition printed in the paper parses
	// into a validated catalog.
	cat := parsePaper(t)
	wantObj := []string{
		"SimpleGate", "PinType", "ElementaryGate", "GateInterface_I",
		"GateInterface", "GateImplementation", "GateImplementation.SubGates",
		"TimedComposite", "BoltType", "NutType", "BoreType",
		"GirderInterface", "PlateInterface", "Plate", "Girder",
		"WeightCarrying_Structure", "WeightCarrying_Structure.Girders",
		"WeightCarrying_Structure.Plates", "ScrewingType.Bolt", "ScrewingType.Nut",
	}
	for _, n := range wantObj {
		if _, ok := cat.ObjectType(n); !ok {
			t.Errorf("object type %q missing", n)
		}
	}
	for _, n := range []string{"WireType", "ScrewingType"} {
		if _, ok := cat.RelType(n); !ok {
			t.Errorf("rel type %q missing", n)
		}
	}
	for _, n := range []string{
		"AllOf_GateInterface_I", "AllOf_GateInterface", "SomeOf_Gate",
		"AllOf_GirderIf", "AllOf_PlateIf", "AllOf_BoltType", "AllOf_NutType",
	} {
		if _, ok := cat.InherRelType(n); !ok {
			t.Errorf("inher rel type %q missing", n)
		}
	}
	for _, n := range []string{"IO", "Point", "GateFn", "AreaDom", "Material"} {
		if _, ok := cat.Domain(n); !ok {
			t.Errorf("domain %q missing", n)
		}
	}
}

// TestParsedMatchesHandBuilt verifies the DDL corpus and the Go-built
// paperschema catalogs agree on the effective structure of every shared
// type.
func TestParsedMatchesHandBuilt(t *testing.T) {
	parsed := parsePaper(t)
	for _, ref := range []*schema.Catalog{paperschema.MustGates(), paperschema.MustSteel()} {
		for _, name := range ref.ObjectTypeNames() {
			re, _ := ref.Effective(name)
			pe, ok := parsed.Effective(name)
			if !ok {
				t.Errorf("type %q missing from parsed catalog", name)
				continue
			}
			if got, want := pe.Describe(), re.Describe(); got != want {
				t.Errorf("effective type %q differs:\nparsed:\n%s\nhand-built:\n%s", name, got, want)
			}
		}
		for _, name := range ref.InherRelTypeNames() {
			rr, _ := ref.InherRelType(name)
			pr, ok := parsed.InherRelType(name)
			if !ok {
				t.Errorf("inher rel %q missing", name)
				continue
			}
			if pr.Transmitter != rr.Transmitter || pr.Inheritor != rr.Inheritor {
				t.Errorf("inher rel %q: transmitter/inheritor mismatch", name)
			}
			if strings.Join(pr.Inheriting, ",") != strings.Join(rr.Inheriting, ",") {
				t.Errorf("inher rel %q: inheriting %v vs %v", name, pr.Inheriting, rr.Inheriting)
			}
		}
	}
}

func TestParseDomains(t *testing.T) {
	cat, err := Parse(`
		domain IO = (IN, OUT);
		domain Point = (X, Y: integer);
		domain Sizes = list-of integer;
		domain Grid = matrix-of boolean;
		domain Tags = set-of string;
		domain Name = char;
		domain Rate = real;
		domain Area = record:
			Length, Width: integer;
		end-domain Area;
		domain Nested = record:
			P: Point;
			Vals: list-of real;
		end-domain;
	`)
	if err != nil {
		t.Fatal(err)
	}
	io, _ := cat.Domain("IO")
	if io.Kind() != domain.KindEnum || io.SymbolIndex("OUT") != 1 {
		t.Errorf("IO = %s", io)
	}
	pt, _ := cat.Domain("Point")
	if pt.Kind() != domain.KindRecord || pt.FieldDomain("Y") != domain.Integer() {
		t.Errorf("Point = %s", pt)
	}
	sizes, _ := cat.Domain("Sizes")
	if sizes.Kind() != domain.KindList || sizes.Elem().Kind() != domain.KindInteger {
		t.Errorf("Sizes = %s", sizes)
	}
	area, _ := cat.Domain("Area")
	if area.Kind() != domain.KindRecord || len(area.Fields()) != 2 {
		t.Errorf("Area = %s", area)
	}
	nested, _ := cat.Domain("Nested")
	if nested.FieldDomain("P") == nil || !domain.Same(nested.FieldDomain("P"), pt) {
		t.Errorf("Nested = %s", nested)
	}
}

func TestParseObjTypeDetails(t *testing.T) {
	cat := parsePaper(t)
	sg, _ := cat.ObjectType("SimpleGate")
	if len(sg.Attributes) != 4 || len(sg.Constraints) != 2 {
		t.Errorf("SimpleGate attrs=%d constraints=%d", len(sg.Attributes), len(sg.Constraints))
	}
	// Multi-name attribute groups expand.
	if sg.Attributes[0].Name != "Length" || sg.Attributes[1].Name != "Width" {
		t.Errorf("attr order: %+v", sg.Attributes[:2])
	}
	// set-of anonymous record attribute.
	pins := sg.Attributes[3]
	if pins.Name != "Pins" || pins.Domain.Kind() != domain.KindSet || pins.Domain.Elem().Kind() != domain.KindRecord {
		t.Errorf("Pins = %s", pins.Domain)
	}
	// Subrel where clause parsed.
	gi, _ := cat.ObjectType("GateImplementation")
	if len(gi.SubRels) != 1 || gi.SubRels[0].Where == nil {
		t.Fatalf("Wires subrel: %+v", gi.SubRels)
	}
	if !strings.Contains(gi.SubRels[0].Where.Src, "SubGates.Pins") {
		t.Errorf("where src = %q", gi.SubRels[0].Where.Src)
	}
	// Rel type participants.
	st, _ := cat.RelType("ScrewingType")
	if len(st.Participants) != 1 || !st.Participants[0].SetOf || st.Participants[0].Type != "BoreType" {
		t.Errorf("ScrewingType participants: %+v", st.Participants)
	}
	if len(st.Subclasses) != 2 || len(st.Constraints) != 3 {
		t.Errorf("ScrewingType subclasses=%d constraints=%d", len(st.Subclasses), len(st.Constraints))
	}
	wt, _ := cat.RelType("WireType")
	if len(wt.Participants) != 2 || wt.Participants[0].Name != "Pin1" {
		t.Errorf("WireType participants: %+v", wt.Participants)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"garbage", "frobnicate", "expected declaration"},
		{"missing equals", "obj-type X attributes: end;", `expected "="`},
		{"mismatched end", "obj-type X = end Y;", "does not match"},
		{"unknown domain", "obj-type X = attributes: A: Nope; end X;", "unknown domain"},
		{"unterminated comment", "/* oops", "unterminated comment"},
		{"unterminated string", `obj-type X = attributes: A: "oops`, "unterminated"},
		{"bad constraint", "obj-type X = constraints: count(; end X;", "missing ';'"},
		{"missing semicolon", "domain A = (X, Y)", `expected ";"`},
		{"rel without relates", "rel-type R = attributes: A: integer; end R;", `expected "relates"`},
		{"inher missing transmitter", "inher-rel-type R = inheritor: object; end;", `expected "transmitter"`},
		{"inher with subclasses", `
			obj-type T = attributes: A: integer; end T;
			inher-rel-type R =
			   transmitter: object-of-type T;
			   inheritor: object;
			   inheriting: A;
			   types-of-subclasses: S: T;
			end R;`, "attributes and constraints only"},
		{"bad where", "obj-type X = types-of-subrels: W: R where count(; end X;", "missing ';'"},
		{"rel as inheritor", `
			obj-type T = attributes: A: integer; end T;
			inher-rel-type R = transmitter: object-of-type T; inheritor: object; inheriting: A; end R;
			rel-type W = relates: P: object; inheritor-in: R; end W;`, "cannot be an inheritor"},
		{"duplicate type", "obj-type X = end X; obj-type X = end X;", "duplicate"},
		{"bad char", "obj-type X = attributes: A: integer; ? end;", "unexpected character"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Parse("domain A = (X, Y);\nobj-type = end;")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should locate line 2: %v", err)
	}
}

func TestParseIntoAccumulates(t *testing.T) {
	cat := schema.NewCatalog()
	if err := ParseInto("domain IO = (IN, OUT);", cat); err != nil {
		t.Fatal(err)
	}
	if err := ParseInto("obj-type P = attributes: D: IO; end P;", cat); err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.ObjectType("P"); !ok {
		t.Error("accumulated type missing")
	}
}

func TestLineCommentsAndWhitespace(t *testing.T) {
	_, err := Parse(`
		-- a line comment
		domain IO = (IN, OUT); -- trailing
		/* block */ obj-type X =
		   attributes: D: IO;
		end X;
	`)
	if err != nil {
		t.Fatal(err)
	}
}
