package ddl

import (
	_ "embed"

	"cadcam/internal/schema"
)

// PaperDDL is the complete schema corpus of the paper in DDL form,
// embedded for tools and benchmarks (cmd/caddl demonstrates parsing it
// from a file; cmd/cadbench and the benchmark suite parse this copy).
//
//go:embed testdata/paper.ddl
var PaperDDL string

// ParsePaperCorpus parses the embedded corpus into a fresh catalog.
func ParsePaperCorpus() (*schema.Catalog, error) { return Parse(PaperDDL) }
