// Package oplog defines the logical operation records the database
// journals. It is a leaf package (values and codec only) so that both the
// object store (which emits ops as it mutates) and the recovery machinery
// (which replays them) can depend on it without cycles.
package oplog

import (
	"cadcam/internal/codec"
	"cadcam/internal/domain"
)

// Kind identifies a logical operation. Append-only: never renumber.
type Kind uint8

// Operation kinds.
const (
	KindInvalid Kind = iota
	KindDefineClass
	KindNewObject
	KindNewSubobject
	KindNewRelSubobject
	KindSetAttr
	KindRelate
	KindRelateIn
	KindBind
	KindUnbind
	KindAcknowledge
	KindDelete
	KindDeletePolicy
	KindDefineDesign
	KindAddVersion
	KindSetStatus
	KindSetDefault
	// KindCreateIndex journals a secondary-index definition: Name is the
	// index name, Name2 the class, Value the attribute (as a Str). The
	// index contents are rebuilt by replay, never logged.
	KindCreateIndex
	KindDropIndex
)

// Op is one journaled operation. Field use depends on Kind; unused fields
// stay zero. Out records the surrogate a creation op produced, so replay
// can verify determinism.
type Op struct {
	Kind  Kind
	Sur   domain.Surrogate // primary object
	Sur2  domain.Surrogate // secondary (transmitter, parent, ...)
	Out   domain.Surrogate // surrogate assigned by a creation op
	Name  string           // type/class/attr/design name
	Name2 string           // secondary name
	Value domain.Value
	Parts map[string]domain.Value
	Surs  []domain.Surrogate
	Num   int64

	// Seq is the store sequence number the op consumed (0 for ops that
	// consume none). With concurrent writers on a sharded store, journal
	// append order and sequence order can diverge; replay primes the
	// store's counter from Seq before re-executing each op so every
	// re-execution reproduces its original sequence assignment.
	Seq uint64
}

// Clone returns a copy of the op that shares no mutable containers with
// the original. The group-commit pipeline encodes ops after the emitting
// store call has returned, so the journaled op must not alias the Parts
// map or Surs slice the caller may go on to reuse. domain.Values are
// immutable by convention, so a shallow copy of the containers suffices.
func (op *Op) Clone() *Op {
	c := *op
	if op.Parts != nil {
		c.Parts = make(map[string]domain.Value, len(op.Parts))
		for k, v := range op.Parts {
			c.Parts[k] = v
		}
	}
	if op.Surs != nil {
		c.Surs = append([]domain.Surrogate(nil), op.Surs...)
	}
	return &c
}

// Encode serializes the op.
func (op *Op) Encode() []byte {
	var e codec.Buf
	e.Byte(byte(op.Kind))
	e.Sur(op.Sur)
	e.Sur(op.Sur2)
	e.Sur(op.Out)
	e.Str(op.Name)
	e.Str(op.Name2)
	e.Value(op.Value)
	e.ValueMap(op.Parts)
	e.Surs(op.Surs)
	e.Varint(op.Num)
	e.Uvarint(op.Seq)
	return e.Bytes()
}

// Decode deserializes an op.
func Decode(b []byte) (*Op, error) {
	r := codec.NewReader(b)
	op := &Op{
		Kind:  Kind(r.Byte()),
		Sur:   r.Sur(),
		Sur2:  r.Sur(),
		Out:   r.Sur(),
		Name:  r.Str(),
		Name2: r.Str(),
		Value: r.Value(),
		Parts: r.ValueMap(),
		Surs:  r.Surs(),
		Num:   r.Varint(),
	}
	// Seq is a trailing field added later; logs written before it simply
	// end here, and replay falls back to append-order sequencing.
	if r.Rest() > 0 {
		op.Seq = r.Uvarint()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return op, nil
}
