package oplog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cadcam/internal/domain"
)

func TestRoundTripAllFields(t *testing.T) {
	op := &Op{
		Kind:  KindRelateIn,
		Sur:   7,
		Sur2:  8,
		Out:   9,
		Name:  "Wires",
		Name2: "WireType",
		Value: domain.NewList(domain.Int(1)),
		Parts: map[string]domain.Value{
			"Pin1": domain.Ref(1),
			"Pin2": domain.Ref(2),
		},
		Surs: []domain.Surrogate{3, 4, 5},
		Num:  -12,
	}
	got, err := Decode(op.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != op.Kind || got.Sur != op.Sur || got.Sur2 != op.Sur2 || got.Out != op.Out ||
		got.Name != op.Name || got.Name2 != op.Name2 || got.Num != op.Num {
		t.Errorf("scalar fields: %+v vs %+v", got, op)
	}
	if !got.Value.Equal(op.Value) {
		t.Errorf("value: %s vs %s", got.Value, op.Value)
	}
	if len(got.Parts) != 2 || !got.Parts["Pin1"].Equal(domain.Ref(1)) {
		t.Errorf("parts: %v", got.Parts)
	}
	if len(got.Surs) != 3 || got.Surs[2] != 5 {
		t.Errorf("surs: %v", got.Surs)
	}
}

func TestZeroOpRoundTrip(t *testing.T) {
	op := &Op{Kind: KindDelete}
	got, err := Decode(op.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindDelete || got.Sur != 0 || got.Name != "" || got.Parts != nil || got.Surs != nil {
		t.Errorf("zero op: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{byte(KindSetAttr)},          // truncated after kind
		{byte(KindSetAttr), 1, 2, 3}, // truncated mid-fields
	}
	for _, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("input % x should fail", b)
		}
	}
}

type randomOp struct{ Op *Op }

func (randomOp) Generate(r *rand.Rand, _ int) reflect.Value {
	op := &Op{
		Kind:  Kind(r.Intn(int(KindSetDefault) + 1)),
		Sur:   domain.Surrogate(r.Uint64() >> 1),
		Sur2:  domain.Surrogate(r.Uint64() >> 1),
		Out:   domain.Surrogate(r.Uint64() >> 1),
		Name:  randName(r),
		Name2: randName(r),
		Num:   r.Int63() - (1 << 62),
	}
	if r.Intn(2) == 0 {
		op.Value = domain.Int(r.Int63())
	} else {
		op.Value = domain.NullValue
	}
	for i := 0; i < r.Intn(3); i++ {
		if op.Parts == nil {
			op.Parts = map[string]domain.Value{}
		}
		op.Parts[randName(r)] = domain.Ref(r.Uint64())
	}
	for i := 0; i < r.Intn(3); i++ {
		op.Surs = append(op.Surs, domain.Surrogate(r.Uint64()))
	}
	return reflect.ValueOf(randomOp{Op: op})
}

func randName(r *rand.Rand) string {
	b := make([]byte, r.Intn(10))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// Property: ops round-trip exactly.
func TestQuickOpRoundTrip(t *testing.T) {
	f := func(a randomOp) bool {
		got, err := Decode(a.Op.Encode())
		if err != nil {
			return false
		}
		if got.Kind != a.Op.Kind || got.Sur != a.Op.Sur || got.Sur2 != a.Op.Sur2 ||
			got.Out != a.Op.Out || got.Name != a.Op.Name || got.Name2 != a.Op.Name2 ||
			got.Num != a.Op.Num || len(got.Parts) != len(a.Op.Parts) || len(got.Surs) != len(a.Op.Surs) {
			return false
		}
		for k, v := range a.Op.Parts {
			if !got.Parts[k].Equal(v) {
				return false
			}
		}
		for i, s := range a.Op.Surs {
			if got.Surs[i] != s {
				return false
			}
		}
		return got.Value.Equal(a.Op.Value) || (domain.IsNull(got.Value) && domain.IsNull(a.Op.Value))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
