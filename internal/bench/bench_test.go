package bench

import (
	"testing"

	"cadcam"
)

func TestBuildFlipFlopShape(t *testing.T) {
	db, err := Gates()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, nSub := range []int{1, 2, 5} {
		ff, err := BuildFlipFlop(db, nSub)
		if err != nil {
			t.Fatalf("nSub=%d: %v", nSub, err)
		}
		if len(ff.SubGates) != nSub || len(ff.Wires) != 2*nSub {
			t.Errorf("nSub=%d: %d subgates, %d wires", nSub, len(ff.SubGates), len(ff.Wires))
		}
		pins, err := db.Members(ff.Impl, "Pins")
		if err != nil || len(pins) != 2*nSub {
			t.Errorf("nSub=%d: %d external pins", nSub, len(pins))
		}
		if v := db.CheckAll(); len(v) != 0 {
			t.Errorf("nSub=%d: violations %v", nSub, v)
		}
	}
}

func TestChainCatalogAndBuild(t *testing.T) {
	for _, depth := range []int{1, 3, 10} {
		cat, err := ChainCatalog(depth)
		if err != nil {
			t.Fatal(err)
		}
		db, err := cadcam.OpenMemory(cat)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := BuildChain(db, depth)
		if err != nil {
			t.Fatal(err)
		}
		if len(chain) != depth+1 {
			t.Fatalf("chain length %d, want %d", len(chain), depth+1)
		}
		v, err := db.GetAttr(chain[depth], "X")
		if err != nil || !v.Equal(cadcam.Int(42)) {
			t.Errorf("depth %d: leaf X = %v, %v", depth, v, err)
		}
		db.Close()
	}
}

func TestBuildStructureShape(t *testing.T) {
	db, err := Steel()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, err := BuildStructure(db, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Screwings) != 7 {
		t.Errorf("screwings = %d", len(st.Screwings))
	}
	if v := db.CheckAll(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestVersionSetShape(t *testing.T) {
	db, err := Gates()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	impls, err := VersionSet(db, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(impls) != 9 {
		t.Fatalf("impls = %d", len(impls))
	}
	vs, err := db.Versions().Versions("D")
	if err != nil || len(vs) != 9 {
		t.Fatalf("versions = %v, %v", vs, err)
	}
	// Default resolves to the last released main-line version.
	got, err := db.Resolve(cadcam.GenericRef{Design: "D", Policy: cadcam.SelectDefault}, nil)
	if err != nil || got != impls[8] {
		t.Errorf("default = %v (want %v), %v", got, impls[8], err)
	}
	alts, _ := db.Versions().Alternatives("D")
	if len(alts[""]) != 5 || len(alts["alt"]) != 4 {
		t.Errorf("alternatives: main=%d alt=%d", len(alts[""]), len(alts["alt"]))
	}
}
