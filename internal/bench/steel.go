package bench

import (
	"cadcam"
	"cadcam/internal/paperschema"
)

// Structure describes a generated weight-carrying structure.
type Structure struct {
	Root      cadcam.Surrogate
	Girder    cadcam.Surrogate // the girder component subobject
	Screwings []cadcam.Surrogate
	Bolt      cadcam.Surrogate // the shared catalog bolt
}

// BuildStructure generates a weight-carrying structure with one girder
// interface carrying nScrewings bores, each screwed with a bolt/nut pair
// from a shared part catalog (one bolt part, one nut part). Bore and part
// dimensions satisfy every ScrewingType constraint.
func BuildStructure(db *cadcam.Database, nScrewings int) (*Structure, error) {
	bolt, err := db.NewObject(paperschema.TypeBolt, "")
	if err != nil {
		return nil, err
	}
	if err := db.SetAttr(bolt, "Length", cadcam.Int(30)); err != nil {
		return nil, err
	}
	if err := db.SetAttr(bolt, "Diameter", cadcam.Int(8)); err != nil {
		return nil, err
	}
	nut, err := db.NewObject(paperschema.TypeNut, "")
	if err != nil {
		return nil, err
	}
	if err := db.SetAttr(nut, "Length", cadcam.Int(10)); err != nil {
		return nil, err
	}
	if err := db.SetAttr(nut, "Diameter", cadcam.Int(8)); err != nil {
		return nil, err
	}

	gi, err := db.NewObject(paperschema.TypeGirderInterface, "")
	if err != nil {
		return nil, err
	}
	for _, kv := range [][2]any{{"Length", int64(500)}, {"Height", int64(20)}, {"Width", int64(10)}} {
		if err := db.SetAttr(gi, kv[0].(string), cadcam.Int(kv[1].(int64))); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nScrewings; i++ {
		bore, err := db.NewSubobject(gi, "Bores")
		if err != nil {
			return nil, err
		}
		if err := db.SetAttr(bore, "Diameter", cadcam.Int(10)); err != nil {
			return nil, err
		}
		if err := db.SetAttr(bore, "Length", cadcam.Int(20)); err != nil {
			return nil, err
		}
	}

	st := &Structure{Bolt: bolt}
	st.Root, err = db.NewObject(paperschema.TypeStructure, "")
	if err != nil {
		return nil, err
	}
	if err := db.SetAttr(st.Root, "Designer", cadcam.Str("generator")); err != nil {
		return nil, err
	}
	st.Girder, err = db.NewSubobject(st.Root, "Girders")
	if err != nil {
		return nil, err
	}
	if _, err := db.Bind(paperschema.RelAllOfGirderIf, st.Girder, gi); err != nil {
		return nil, err
	}
	bores, err := db.Members(st.Girder, "Bores")
	if err != nil {
		return nil, err
	}
	for _, bore := range bores {
		screw, err := db.RelateIn(st.Root, "Screwings", cadcam.Participants{
			"Bores": cadcam.NewSet(cadcam.RefOf(bore)),
		})
		if err != nil {
			return nil, err
		}
		if err := db.SetAttr(screw, "Strength", cadcam.Int(5)); err != nil {
			return nil, err
		}
		sb, err := db.NewRelSubobject(screw, "Bolt")
		if err != nil {
			return nil, err
		}
		if _, err := db.Bind(paperschema.RelAllOfBoltType, sb, bolt); err != nil {
			return nil, err
		}
		sn, err := db.NewRelSubobject(screw, "Nut")
		if err != nil {
			return nil, err
		}
		if _, err := db.Bind(paperschema.RelAllOfNutType, sn, nut); err != nil {
			return nil, err
		}
		st.Screwings = append(st.Screwings, screw)
	}
	return st, nil
}

// VersionSet registers n implementations of one interface as versions of
// a design named "D", alternating between the main line and a "alt"
// branch, releasing every other version, and setting the last main
// version as default. Returns the implementation surrogates.
func VersionSet(db *cadcam.Database, n int) ([]cadcam.Surrogate, error) {
	iface, err := Interface(db, 2, 1, 4, 2)
	if err != nil {
		return nil, err
	}
	if err := db.DefineDesign("D", iface); err != nil {
		return nil, err
	}
	var out []cadcam.Surrogate
	var lastMain cadcam.Surrogate
	for i := 0; i < n; i++ {
		impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
		if err != nil {
			return nil, err
		}
		if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
			return nil, err
		}
		if err := db.SetAttr(impl, "TimeBehavior", cadcam.Int(int64(10+i))); err != nil {
			return nil, err
		}
		alt := ""
		var derived []cadcam.Surrogate
		if i%2 == 1 {
			alt = "alt"
		}
		if lastMain != 0 {
			derived = []cadcam.Surrogate{lastMain}
		}
		if _, err := db.AddVersion("D", impl, derived, alt); err != nil {
			return nil, err
		}
		if i%2 == 0 {
			if err := db.SetStatus(impl, cadcam.StatusReleased); err != nil {
				return nil, err
			}
			lastMain = impl
		}
		out = append(out, impl)
	}
	if lastMain != 0 {
		if err := db.SetDefault("D", lastMain); err != nil {
			return nil, err
		}
	}
	return out, nil
}
