// Package bench builds the parameterized workloads shared by the cadbench
// experiment harness and the root benchmark suite: flip-flop composites
// (Figure 1), interface hierarchies (§4.2), steel structures (Figure 5)
// and version sets (§6).
package bench

import (
	"fmt"

	"cadcam"
	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
	"cadcam/internal/schema"
)

// Gates opens an in-memory database with the chip-design schema.
func Gates() (*cadcam.Database, error) {
	return cadcam.OpenMemory(paperschema.MustGates())
}

// Steel opens an in-memory database with the steel-construction schema.
func Steel() (*cadcam.Database, error) {
	return cadcam.OpenMemory(paperschema.MustSteel())
}

// Interface builds a two-level gate interface (hierarchy root owning the
// pins + interface version) and returns the interface.
func Interface(db *cadcam.Database, nIn, nOut int, length, width int64) (cadcam.Surrogate, error) {
	root, err := db.NewObject(paperschema.TypeGateInterfaceI, "")
	if err != nil {
		return 0, err
	}
	id := int64(1)
	addPin := func(dir string) error {
		pin, err := db.NewSubobject(root, "Pins")
		if err != nil {
			return err
		}
		if err := db.SetAttr(pin, "InOut", cadcam.Sym(dir)); err != nil {
			return err
		}
		if err := db.SetAttr(pin, "PinId", cadcam.Int(id)); err != nil {
			return err
		}
		id++
		return nil
	}
	for i := 0; i < nIn; i++ {
		if err := addPin("IN"); err != nil {
			return 0, err
		}
	}
	for i := 0; i < nOut; i++ {
		if err := addPin("OUT"); err != nil {
			return 0, err
		}
	}
	iface, err := db.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		return 0, err
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterfaceI, iface, root); err != nil {
		return 0, err
	}
	if err := db.SetAttr(iface, "Length", cadcam.Int(length)); err != nil {
		return 0, err
	}
	if err := db.SetAttr(iface, "Width", cadcam.Int(width)); err != nil {
		return 0, err
	}
	return iface, nil
}

// FlipFlop describes a constructed composite gate.
type FlipFlop struct {
	Iface     cadcam.Surrogate // the composite's own interface
	CompIface cadcam.Surrogate // the component interface (shared by subgates)
	Impl      cadcam.Surrogate
	SubGates  []cadcam.Surrogate
	Wires     []cadcam.Surrogate
}

// BuildFlipFlop constructs a Figure-1 composite with nSub component
// subgates, each bound to one shared NAND interface, wired to the
// composite's external pins.
func BuildFlipFlop(db *cadcam.Database, nSub int) (*FlipFlop, error) {
	compIface, err := Interface(db, 2, 1, 4, 2)
	if err != nil {
		return nil, err
	}
	ownIface, err := Interface(db, nSub, nSub, 10, 6)
	if err != nil {
		return nil, err
	}
	ff := &FlipFlop{Iface: ownIface, CompIface: compIface}
	ff.Impl, err = db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		return nil, err
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, ff.Impl, ownIface); err != nil {
		return nil, err
	}
	if err := db.SetAttr(ff.Impl, "TimeBehavior", cadcam.Int(12)); err != nil {
		return nil, err
	}
	ownPins, err := db.Members(ff.Impl, "Pins")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nSub; i++ {
		sg, err := db.NewSubobject(ff.Impl, "SubGates")
		if err != nil {
			return nil, err
		}
		if _, err := db.Bind(paperschema.RelAllOfGateInterface, sg, compIface); err != nil {
			return nil, err
		}
		if err := db.SetAttr(sg, "GateLocation",
			cadcam.NewRec("X", cadcam.Int(int64(i*5)), "Y", cadcam.Int(0))); err != nil {
			return nil, err
		}
		ff.SubGates = append(ff.SubGates, sg)
		sgPins, err := db.Members(sg, "Pins")
		if err != nil {
			return nil, err
		}
		// External in -> component in; component out -> external out.
		w1, err := db.RelateIn(ff.Impl, "Wires", cadcam.Participants{
			"Pin1": cadcam.RefOf(ownPins[i]),
			"Pin2": cadcam.RefOf(sgPins[0]),
		})
		if err != nil {
			return nil, err
		}
		w2, err := db.RelateIn(ff.Impl, "Wires", cadcam.Participants{
			"Pin1": cadcam.RefOf(sgPins[2]),
			"Pin2": cadcam.RefOf(ownPins[nSub+i]),
		})
		if err != nil {
			return nil, err
		}
		ff.Wires = append(ff.Wires, w1, w2)
	}
	return ff, nil
}

// ChainCatalog builds a schema with a depth-long abstraction hierarchy:
// L0 owns attribute X; for each level k >= 1, inher-rel-type Rk
// (transmitter L<k-1>, inheriting X) and obj-type Lk inheritor-in Rk. A
// bound chain of objects then resolves Lk.X through k hops — the workload
// for the hierarchy-depth experiment (E3).
func ChainCatalog(depth int) (*schema.Catalog, error) {
	c := schema.NewCatalog()
	if err := c.AddObjectType(&schema.ObjectType{
		Name:       "L0",
		Attributes: []schema.Attribute{{Name: "X", Domain: domain.Integer()}},
	}); err != nil {
		return nil, err
	}
	for k := 1; k <= depth; k++ {
		rel := fmt.Sprintf("R%d", k)
		if err := c.AddInherRelType(&schema.InherRelType{
			Name:        rel,
			Transmitter: fmt.Sprintf("L%d", k-1),
			Inheriting:  []string{"X"},
		}); err != nil {
			return nil, err
		}
		if err := c.AddObjectType(&schema.ObjectType{
			Name:        fmt.Sprintf("L%d", k),
			InheritorIn: []string{rel},
			Attributes:  []schema.Attribute{{Name: fmt.Sprintf("Own%d", k), Domain: domain.Integer()}},
		}); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// BuildChain instantiates one object per level of a ChainCatalog schema
// and binds them into a value-inheritance chain. It returns the objects
// from root (L0, holding X) to leaf (L<depth>).
func BuildChain(db *cadcam.Database, depth int) ([]cadcam.Surrogate, error) {
	chain := make([]cadcam.Surrogate, 0, depth+1)
	root, err := db.NewObject("L0", "")
	if err != nil {
		return nil, err
	}
	if err := db.SetAttr(root, "X", cadcam.Int(42)); err != nil {
		return nil, err
	}
	chain = append(chain, root)
	for k := 1; k <= depth; k++ {
		obj, err := db.NewObject(fmt.Sprintf("L%d", k), "")
		if err != nil {
			return nil, err
		}
		if _, err := db.Bind(fmt.Sprintf("R%d", k), obj, chain[k-1]); err != nil {
			return nil, err
		}
		chain = append(chain, obj)
	}
	return chain, nil
}
