package serve

import (
	"errors"
	"fmt"
)

// Typed client-visible errors. The server transmits them as response
// codes; the client maps codes back so callers can errors.Is against
// them without parsing messages.
var (
	// ErrServerBusy reports an admission-control rejection: the WAL
	// group-commit pipeline is stalled (or the server is at its session
	// cap) and the server is shedding new write-path work. The request
	// was not executed; retry with backoff.
	ErrServerBusy = errors.New("serve: server busy")
	// ErrReadOnly reports a mutating request on a read-only session
	// (follower backend, or a session opened with FlagReadOnly).
	ErrReadOnly = errors.New("serve: session is read-only")
	// ErrDraining reports a request received while the server drains for
	// shutdown. The request was not executed.
	ErrDraining = errors.New("serve: server draining")
	// ErrAuth reports a rejected Hello (bad token or protocol version).
	ErrAuth = errors.New("serve: authentication failed")
	// ErrBadRequest reports a structurally valid frame that is invalid
	// in the session's state (no Hello yet, unknown snapshot handle,
	// commit without a transaction, ...).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrClientClosed reports a call issued on (or outstanding at) a
	// closed client.
	ErrClientClosed = errors.New("serve: client closed")
)

// RemoteError carries a server-side application error (bad surrogate,
// constraint violation, frozen version, ...) back to the caller.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "serve: remote: " + e.Msg }

// codeError maps a response to the typed error the caller sees.
func codeError(p *Response) error {
	switch p.Code {
	case CodeOK:
		return nil
	case CodeBusy:
		return fmt.Errorf("%w (%s)", ErrServerBusy, p.Msg)
	case CodeReadOnly:
		return fmt.Errorf("%w (%s)", ErrReadOnly, p.Msg)
	case CodeDraining:
		return fmt.Errorf("%w (%s)", ErrDraining, p.Msg)
	case CodeAuth:
		return fmt.Errorf("%w (%s)", ErrAuth, p.Msg)
	case CodeBadRequest:
		return fmt.Errorf("%w (%s)", ErrBadRequest, p.Msg)
	default:
		return &RemoteError{Msg: p.Msg}
	}
}
