package serve

import (
	"encoding/json"
	"fmt"

	"cadcam"
	"cadcam/internal/repl"
)

// session is one connection's server-side state. The session owns its
// transaction and its pinned snapshots: whatever the client leaves
// behind on disconnect — a transaction holding locks, a snapshot
// pinning MVCC history — is torn down by the session, never leaked.
//
// Two goroutines per session: the reader pulls frames off the
// transport, makes the admission decision, and enqueues; the worker
// executes in queue order and writes responses — so pipelined requests
// always answer in request order, and a rejected request's CodeBusy
// response takes its place in the same ordered stream.
type session struct {
	srv  *Server
	conn repl.Conn

	// capRejected: accepted over MaxSessions; the first request is
	// answered CodeBusy and the session closes.
	capRejected bool

	// done is closed by teardown so a reader blocked handing work to an
	// already-exited worker can bail instead of leaking.
	done chan struct{}

	// Session state below is owned by the worker goroutine.
	authed   bool
	readOnly bool
	user     string
	txn      *cadcam.Txn
	snaps    map[uint64]*cadcam.SnapshotView
	nextSnap uint64
}

// item is one admitted (or pre-rejected) request flowing reader→worker.
type item struct {
	req *Request
	// reject, when non-zero, is the admission decision made at read
	// time: the worker answers with this code instead of executing.
	reject byte
}

// mutating reports whether a request kind enters the write path (and is
// therefore subject to admission control and read-only rejection).
func mutating(kind byte) bool {
	switch kind {
	case ReqNew, ReqSet, ReqBind, ReqUnbind, ReqDelete, ReqBegin:
		return true
	}
	return false
}

// journaling reports whether a request kind writes journal records
// directly — the kinds with a durability→acknowledgment gap. Begin is
// mutating (admission control applies) but journals nothing, and
// faulting its response would desynchronize the client's and server's
// idea of whether a session transaction exists, which no lost-ack
// schedule can legitimately produce: a real client that loses a
// response tears the connection down, it does not keep using the
// session.
func journaling(kind byte) bool {
	switch kind {
	case ReqNew, ReqSet, ReqBind, ReqUnbind, ReqDelete:
		return true
	}
	return false
}

// run is the session body: spawn the reader, execute until the queue
// closes or drain empties it, then tear down.
func (s *session) run() {
	defer s.teardown()
	queue := make(chan item, s.srv.cfg.pipelineDepth())
	go s.readLoop(queue)
	s.workLoop(queue)
}

// readLoop pulls frames, decodes, admits, enqueues. It closes the queue
// when the transport dies or a frame fails validation (the protocol
// cannot resynchronize inside a corrupted stream, so the session ends).
func (s *session) readLoop(queue chan<- item) {
	defer close(queue)
	for {
		raw, err := s.conn.Recv()
		if err != nil {
			return // disconnect (clean or not): worker drains, teardown reclaims
		}
		req, err := DecodeRequest(raw)
		if err != nil {
			s.srv.protoErrors.Add(1)
			s.srv.logf("serve: corrupt request frame: %v", err)
			return
		}
		it := item{req: req}
		switch {
		case s.srv.Draining():
			it.reject = CodeDraining
		case s.srv.busy.Load() && mutating(req.Kind):
			it.reject = CodeBusy
		}
		s.srv.requests.Add(1)
		select {
		case queue <- it:
		case <-s.done:
			return // worker already gone; the enqueue would never drain
		}
		if hw := int64(len(queue)); hw > s.srv.pipelineHW.Load() {
			s.srv.pipelineHW.Store(hw) // racy max: a gauge, not an invariant
		}
	}
}

// workLoop executes admitted requests in order. On drain it finishes
// what is already queued, then returns so teardown can reclaim the
// session's transaction and pins.
func (s *session) workLoop(queue <-chan item) {
	for {
		select {
		case it, ok := <-queue:
			if !ok {
				return
			}
			if s.handle(it) {
				return
			}
		case <-s.srv.drainCh:
			for {
				select {
				case it, ok := <-queue:
					if !ok {
						return
					}
					if s.handle(it) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// handle executes one request and writes its response. It reports
// whether the session should stop (cap rejection delivered, or the
// transport write failed).
func (s *session) handle(it item) (stop bool) {
	req := it.req
	var resp *Response
	switch {
	case s.capRejected:
		resp = errorResp(req, CodeBusy, "session limit reached")
		s.srv.busyRejected.Add(1)
		stop = true
	case it.reject == CodeDraining:
		resp = errorResp(req, CodeDraining, "server is draining")
		s.srv.drainRejected.Add(1)
	case it.reject == CodeBusy:
		resp = errorResp(req, CodeBusy, "journal pipeline stalled")
		s.srv.busyRejected.Add(1)
	case !s.authed && req.Kind != ReqHello:
		resp = errorResp(req, CodeBadRequest, "first request must be Hello")
	default:
		resp = s.exec(req)
	}
	// The acknowledgment gap: a kill between this point and the Send
	// below loses the response but never the durable effect — which is
	// exactly what the crash matrix verifies. The error kind downgrades
	// a durable success to an "unknown outcome" error response.
	if resp.Code == CodeOK && journaling(req.Kind) {
		if err := fpAckGap.Hit(); err != nil {
			resp = errorResp(req, CodeError, fmt.Sprintf("ack dropped: %v", err))
		}
	}
	if resp.Code != CodeOK {
		s.srv.opErrors.Add(1)
	}
	if err := s.conn.Send(resp.Encode()); err != nil {
		return true
	}
	s.srv.responses.Add(1)
	return stop
}

// exec dispatches one authenticated (or Hello) request.
func (s *session) exec(req *Request) *Response {
	switch req.Kind {
	case ReqHello:
		return s.execHello(req)
	case ReqPing:
		return &Response{ID: req.ID, Kind: req.Kind, Seq: req.Snap}
	case ReqStats:
		return s.execStats(req)
	case ReqBegin:
		return s.execBegin(req)
	case ReqCommit, ReqAbort:
		return s.execEnd(req)
	case ReqSnapOpen:
		return s.execSnapOpen(req)
	case ReqSnapGet:
		return s.execSnapGet(req)
	case ReqSnapClose:
		return s.execSnapClose(req)
	}
	if mutating(req.Kind) && s.readOnly {
		return errorResp(req, CodeReadOnly, "read-only session")
	}
	if s.srv.db == nil {
		return s.execFollowerRead(req)
	}
	return s.execDB(req)
}

func (s *session) execHello(req *Request) *Response {
	if s.authed {
		return errorResp(req, CodeBadRequest, "session already established")
	}
	if req.Snap != ProtocolVersion {
		return errorResp(req, CodeAuth, fmt.Sprintf("protocol version %d not supported", req.Snap))
	}
	if s.srv.cfg.AuthToken != "" && req.Name != s.srv.cfg.AuthToken {
		return errorResp(req, CodeAuth, "bad token")
	}
	s.authed = true
	s.user = req.Name2
	s.readOnly = s.srv.fol != nil || req.Flags&FlagReadOnly != 0
	flags := byte(0)
	if s.readOnly {
		flags = FlagReadOnly
	}
	return &Response{ID: req.ID, Kind: req.Kind, Seq: ProtocolVersion, Sur: cadcam.Surrogate(flags)}
}

// StatsReply is the JSON document a ReqStats response carries.
type StatsReply struct {
	Server ServerStats         `json:"server"`
	DB     *cadcam.DBStats     `json:"db,omitempty"`
	Repl   *repl.FollowerStats `json:"repl,omitempty"`
}

func (s *session) execStats(req *Request) *Response {
	blob := StatsReply{Server: s.srv.Stats()}
	if s.srv.db != nil {
		st := s.srv.db.Stats()
		blob.DB = &st
	}
	if s.srv.fol != nil {
		fs := s.srv.fol.Stats()
		blob.Repl = &fs
	}
	b, err := json.Marshal(&blob)
	if err != nil {
		return errorResp(req, CodeError, err.Error())
	}
	return &Response{ID: req.ID, Kind: req.Kind, Blob: b}
}

func (s *session) execBegin(req *Request) *Response {
	if s.readOnly {
		return errorResp(req, CodeReadOnly, "read-only session")
	}
	if s.txn != nil {
		return errorResp(req, CodeBadRequest, "transaction already open")
	}
	s.txn = s.srv.db.Begin(s.user)
	return &Response{ID: req.ID, Kind: req.Kind, Seq: s.txn.ID()}
}

func (s *session) execEnd(req *Request) *Response {
	if s.txn == nil {
		return errorResp(req, CodeBadRequest, "no open transaction")
	}
	t := s.txn
	s.txn = nil
	var err error
	if req.Kind == ReqCommit {
		err = t.Commit()
	} else {
		err = t.Abort()
	}
	if err != nil {
		return errorResp(req, CodeError, err.Error())
	}
	return &Response{ID: req.ID, Kind: req.Kind, Seq: t.ID()}
}

func (s *session) execSnapOpen(req *Request) *Response {
	if len(s.snaps) >= s.srv.cfg.maxSnapshots() {
		return errorResp(req, CodeError, "snapshot limit reached")
	}
	var v *cadcam.SnapshotView
	if s.srv.db != nil {
		v = s.srv.db.SnapshotView()
	} else {
		fv, err := s.srv.fol.SnapshotView()
		if err != nil {
			return errorResp(req, CodeError, err.Error())
		}
		v = fv
	}
	s.nextSnap++
	s.snaps[s.nextSnap] = v
	return &Response{ID: req.ID, Kind: req.Kind, Seq: v.Seq(), Sur: cadcam.Surrogate(s.nextSnap)}
}

func (s *session) execSnapGet(req *Request) *Response {
	v, ok := s.snaps[req.Snap]
	if !ok {
		return errorResp(req, CodeBadRequest, fmt.Sprintf("unknown snapshot handle %d", req.Snap))
	}
	val, err := v.GetAttr(req.Sur, req.Name)
	if err != nil {
		return errorResp(req, CodeError, err.Error())
	}
	return &Response{ID: req.ID, Kind: req.Kind, Value: val}
}

func (s *session) execSnapClose(req *Request) *Response {
	v, ok := s.snaps[req.Snap]
	if !ok {
		return errorResp(req, CodeBadRequest, fmt.Sprintf("unknown snapshot handle %d", req.Snap))
	}
	delete(s.snaps, req.Snap)
	v.Release()
	return &Response{ID: req.ID, Kind: req.Kind}
}

// execDB runs the object operations against the primary database —
// through the session transaction when one is open (strict 2PL), at
// statement-level auto-commit otherwise.
func (s *session) execDB(req *Request) *Response {
	db, t := s.srv.db, s.txn
	switch req.Kind {
	case ReqNew:
		var sur cadcam.Surrogate
		var err error
		if t != nil {
			sur, err = t.NewObject(req.Name, req.Name2)
		} else {
			sur, err = db.NewObject(req.Name, req.Name2)
		}
		return surResp(req, sur, err)
	case ReqGet:
		var val cadcam.Value
		var err error
		if t != nil {
			val, err = t.GetAttr(req.Sur, req.Name)
		} else {
			val, err = db.GetAttr(req.Sur, req.Name)
		}
		return valResp(req, val, err)
	case ReqSet:
		var err error
		if t != nil {
			err = t.SetAttr(req.Sur, req.Name, req.Value)
		} else {
			err = db.SetAttr(req.Sur, req.Name, req.Value)
		}
		return surResp(req, 0, err)
	case ReqBind:
		var sur cadcam.Surrogate
		var err error
		if t != nil {
			sur, err = t.Bind(req.Name, req.Sur, req.Sur2)
		} else {
			sur, err = db.Bind(req.Name, req.Sur, req.Sur2)
		}
		return surResp(req, sur, err)
	case ReqUnbind:
		if t != nil {
			return errorResp(req, CodeBadRequest, "unbind inside a transaction is not supported")
		}
		return surResp(req, 0, db.Unbind(req.Name, req.Sur))
	case ReqDelete:
		var err error
		if t != nil {
			err = t.Delete(req.Sur)
		} else {
			err = db.Delete(req.Sur)
		}
		return surResp(req, 0, err)
	case ReqQuery:
		surs, err := db.Query(req.Name, req.Name2)
		if err != nil {
			return errorResp(req, CodeError, err.Error())
		}
		return &Response{ID: req.ID, Kind: req.Kind, Surs: surs}
	case ReqExplain:
		text, err := db.Explain(req.Name, req.Name2)
		if err != nil {
			return errorResp(req, CodeError, err.Error())
		}
		return &Response{ID: req.ID, Kind: req.Kind, Blob: []byte(text)}
	}
	return errorResp(req, CodeBadRequest, "unhandled request kind "+kindName(req.Kind))
}

// execFollowerRead serves the read-path requests over the follower
// backend: each read pins a snapshot at the replica's applied sequence,
// resolves, and releases.
func (s *session) execFollowerRead(req *Request) *Response {
	v, err := s.srv.fol.SnapshotView()
	if err != nil {
		return errorResp(req, CodeError, err.Error())
	}
	defer v.Release()
	switch req.Kind {
	case ReqGet:
		val, err := v.GetAttr(req.Sur, req.Name)
		return valResp(req, val, err)
	case ReqQuery:
		surs, err := v.Query(req.Name, req.Name2)
		if err != nil {
			return errorResp(req, CodeError, err.Error())
		}
		return &Response{ID: req.ID, Kind: req.Kind, Surs: surs}
	case ReqExplain:
		text, err := v.Explain(req.Name, req.Name2)
		if err != nil {
			return errorResp(req, CodeError, err.Error())
		}
		return &Response{ID: req.ID, Kind: req.Kind, Blob: []byte(text)}
	}
	return errorResp(req, CodeBadRequest, "unhandled request kind "+kindName(req.Kind))
}

// teardown reclaims everything the session owns — abort the open
// transaction (releasing its locks), release every pinned snapshot,
// close the transport — and unregisters it. Runs exactly once, on every
// exit path: clean disconnect, protocol error, drain, force-close.
func (s *session) teardown() {
	if s.txn != nil {
		if s.srv.Draining() {
			// The drain-abort failpoint: one evaluation per transaction
			// the drain path reclaims. The error kind is counted and the
			// abort proceeds — an injected fault must not leak locks.
			if err := fpDrainAbort.Hit(); err != nil {
				s.srv.logf("serve: drain-abort failpoint: %v", err)
			}
		}
		_ = s.txn.Abort()
		s.txn = nil
		s.srv.txnsAborted.Add(1)
	}
	for h, v := range s.snaps {
		v.Release()
		delete(s.snaps, h)
		s.srv.snapsReleased.Add(1)
	}
	close(s.done)
	s.conn.Close()
	s.srv.removeSession(s)
}

// errorResp builds an error response for a request.
func errorResp(req *Request, code byte, msg string) *Response {
	return &Response{ID: req.ID, Kind: req.Kind, Code: code, Msg: msg}
}

// surResp builds a success-or-error response carrying a surrogate.
func surResp(req *Request, sur cadcam.Surrogate, err error) *Response {
	if err != nil {
		return errorResp(req, CodeError, err.Error())
	}
	return &Response{ID: req.ID, Kind: req.Kind, Sur: sur}
}

// valResp builds a success-or-error response carrying a value.
func valResp(req *Request, val cadcam.Value, err error) *Response {
	if err != nil {
		return errorResp(req, CodeError, err.Error())
	}
	return &Response{ID: req.ID, Kind: req.Kind, Value: val}
}
