package serve

import (
	"errors"
	"net"
	"testing"
	"time"

	"cadcam"
	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

func testDB(t *testing.T) *cadcam.Database {
	t.Helper()
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(5 * time.Second) })
	return s
}

func testClient(t *testing.T, s *Server, opts DialOptions) *Client {
	t.Helper()
	c, err := DialConn(s.Pipe(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServeHelloAuth: the Hello gate — token and protocol version are
// checked, and nothing but Hello is served before it.
func TestServeHelloAuth(t *testing.T) {
	s := testServer(t, Config{DB: testDB(t), AuthToken: "sesame"})

	if _, err := DialConn(s.Pipe(), DialOptions{Token: "wrong"}); !errors.Is(err, ErrAuth) {
		t.Fatalf("bad token: got %v, want ErrAuth", err)
	}

	// Wrong protocol version, sent raw so the client helper cannot fix it.
	conn := s.Pipe()
	defer conn.Close()
	raw := (&Request{ID: 1, Kind: ReqHello, Snap: ProtocolVersion + 1, Name: "sesame"}).Encode()
	if err := conn.Send(raw); err != nil {
		t.Fatal(err)
	}
	b, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeResponse(b)
	if err != nil || p.Code != CodeAuth {
		t.Fatalf("bad version: got code %d err %v, want CodeAuth", p.Code, err)
	}

	// A request before Hello is out of protocol.
	conn2 := s.Pipe()
	defer conn2.Close()
	if err := conn2.Send((&Request{ID: 1, Kind: ReqPing}).Encode()); err != nil {
		t.Fatal(err)
	}
	b, err = conn2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if p, err := DecodeResponse(b); err != nil || p.Code != CodeBadRequest {
		t.Fatalf("pre-Hello request: got code %d err %v, want CodeBadRequest", p.Code, err)
	}

	// The right token establishes a session.
	c := testClient(t, s, DialOptions{Token: "sesame", User: "alice"})
	if _, err := c.Ping(7); err != nil {
		t.Fatal(err)
	}
}

// TestServeCRUDQueryOverTCP: the full read/write surface over a real
// TCP listener and serve.Dial — create, set, get (with inheritance
// binding), query, explain, unbind, delete.
func TestServeCRUDQueryOverTCP(t *testing.T) {
	db := testDB(t)
	if err := db.DefineClass("gates", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{DB: db})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)

	c, err := Dial(l.Addr().String(), DialOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	iface, err := c.NewObject(paperschema.TypeGateInterface, "gates")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetAttr(iface, "Width", domain.Int(3)); err != nil {
		t.Fatal(err)
	}
	if v, err := c.GetAttr(iface, "Width"); err != nil || !v.Equal(domain.Int(3)) {
		t.Fatalf("GetAttr = %v, %v; want 3", v, err)
	}

	rootI, err := c.NewObject(paperschema.TypeGateInterfaceI, "")
	if err != nil {
		t.Fatal(err)
	}
	bind, err := c.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI)
	if err != nil || bind == 0 {
		t.Fatalf("Bind = %v, %v", bind, err)
	}
	if err := c.Unbind(paperschema.RelAllOfGateInterfaceI, iface); err != nil {
		t.Fatal(err)
	}

	surs, err := c.Query("gates", "Width = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(surs) != 1 || surs[0] != iface {
		t.Fatalf("Query = %v; want [%v]", surs, iface)
	}
	plan, err := c.Explain("gates", "Width = 3")
	if err != nil || plan == "" {
		t.Fatalf("Explain = %q, %v", plan, err)
	}

	if err := c.Delete(rootI); err != nil {
		t.Fatal(err)
	}
	// An application error surfaces as a RemoteError, not a dead session.
	var re *RemoteError
	if _, err := c.GetAttr(rootI, "Width"); !errors.As(err, &re) {
		t.Fatalf("read of deleted object: got %v, want RemoteError", err)
	}
	if _, err := c.Ping(1); err != nil {
		t.Fatalf("session should survive an application error: %v", err)
	}
}

// TestServeTxn: the session transaction — commit makes writes visible,
// abort rolls them back, and the transactional protocol states are
// enforced.
func TestServeTxn(t *testing.T) {
	db := testDB(t)
	s := testServer(t, Config{DB: db})
	c := testClient(t, s, DialOptions{User: "alice"})

	iface, err := c.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Commit(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("commit without begin: got %v, want ErrBadRequest", err)
	}

	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("double begin: got %v, want ErrBadRequest", err)
	}
	if err := c.SetAttr(iface, "Width", domain.Int(9)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := db.GetAttr(iface, "Width"); err != nil || !v.Equal(cadcam.Int(9)) {
		t.Fatalf("after commit: %v, %v; want 9", v, err)
	}

	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetAttr(iface, "Width", domain.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, err := db.GetAttr(iface, "Width"); err != nil || !v.Equal(cadcam.Int(9)) {
		t.Fatalf("after abort: %v, %v; want 9 still", v, err)
	}
	if st := db.Txns().LockTableStats(); st.Objects != 0 || st.Granted != 0 || st.Queued != 0 || st.Waiters != 0 {
		t.Fatalf("lock table not empty after commit+abort: %+v", st)
	}
}

// TestServeSnapshots: a pinned snapshot is a frozen view — later writes
// are invisible through the handle, and closing it releases the pin.
func TestServeSnapshots(t *testing.T) {
	db := testDB(t)
	s := testServer(t, Config{DB: db})
	c := testClient(t, s, DialOptions{})

	iface, err := c.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetAttr(iface, "Width", domain.Int(1)); err != nil {
		t.Fatal(err)
	}
	h, _, err := c.SnapOpen()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetAttr(iface, "Width", domain.Int(2)); err != nil {
		t.Fatal(err)
	}
	if v, err := c.SnapGet(h, iface, "Width"); err != nil || !v.Equal(domain.Int(1)) {
		t.Fatalf("snapshot read = %v, %v; want frozen 1", v, err)
	}
	if v, err := c.GetAttr(iface, "Width"); err != nil || !v.Equal(domain.Int(2)) {
		t.Fatalf("live read = %v, %v; want 2", v, err)
	}
	if err := c.SnapClose(h); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SnapGet(h, iface, "Width"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("closed handle: got %v, want ErrBadRequest", err)
	}
	if _, err := c.SnapGet(99, iface, "Width"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown handle: got %v, want ErrBadRequest", err)
	}
	if p := db.Stats().MVCC.Pins; p != 0 {
		t.Fatalf("pins after SnapClose = %d, want 0", p)
	}
}

// TestServeSnapshotCap: MaxSnapshots bounds pinned history per session.
func TestServeSnapshotCap(t *testing.T) {
	db := testDB(t)
	s := testServer(t, Config{DB: db, MaxSnapshots: 2})
	c := testClient(t, s, DialOptions{})
	if _, _, err := c.SnapOpen(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SnapOpen(); err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if _, _, err := c.SnapOpen(); !errors.As(err, &re) {
		t.Fatalf("third SnapOpen: got %v, want RemoteError(limit)", err)
	}
}

// TestServePipelining: many requests issued without waiting complete in
// request order. The client cross-checks every echoed correlation id
// against its FIFO, so a single out-of-order response fails the test.
func TestServePipelining(t *testing.T) {
	db := testDB(t)
	s := testServer(t, Config{DB: db, PipelineDepth: 8})
	c := testClient(t, s, DialOptions{})

	iface, err := c.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	calls := make([]*Call, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			calls[i] = c.Go(&Request{Kind: ReqSet, Sur: iface, Name: "Width", Value: domain.Int(int64(i))})
		} else {
			calls[i] = c.Go(&Request{Kind: ReqGet, Sur: iface, Name: "Width"})
		}
	}
	for i, call := range calls {
		p, err := call.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if i%2 == 1 {
			// The read pipelined directly behind Set(i-1) must see it.
			if !p.Value.Equal(domain.Int(int64(i - 1))) {
				t.Fatalf("call %d read %v, want %d (ordered execution)", i, p.Value, i-1)
			}
		}
	}
	if hw := s.Stats().PipelineHW; hw < 2 {
		t.Fatalf("pipeline high-water %d; the battery never actually pipelined", hw)
	}
}

// TestServeFollowerReadOnly: a follower-backed server serves reads over
// the same protocol and rejects every mutation with ErrReadOnly.
func TestServeFollowerReadOnly(t *testing.T) {
	dir := t.TempDir()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineClass("gates", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	iface, err := db.NewObject(paperschema.TypeGateInterface, "gates")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(iface, "Width", cadcam.Int(5)); err != nil {
		t.Fatal(err)
	}

	fol, err := db.AttachFollower(cadcam.FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	if err := fol.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	s := testServer(t, Config{Follower: fol})
	c := testClient(t, s, DialOptions{})

	if v, err := c.GetAttr(iface, "Width"); err != nil || !v.Equal(domain.Int(5)) {
		t.Fatalf("follower read = %v, %v; want 5", v, err)
	}
	if surs, err := c.Query("gates", "Width = 5"); err != nil || len(surs) != 1 {
		t.Fatalf("follower query = %v, %v", surs, err)
	}
	h, _, err := c.SnapOpen()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := c.SnapGet(h, iface, "Width"); err != nil || !v.Equal(domain.Int(5)) {
		t.Fatalf("follower snapshot read = %v, %v", v, err)
	}
	if err := c.SnapClose(h); err != nil {
		t.Fatal(err)
	}

	if err := c.SetAttr(iface, "Width", domain.Int(6)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower SetAttr: got %v, want ErrReadOnly", err)
	}
	if _, err := c.Begin(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Begin: got %v, want ErrReadOnly", err)
	}
}

// TestServeReadOnlyFlag: a client-requested read-only session over a
// primary rejects writes the same way.
func TestServeReadOnlyFlag(t *testing.T) {
	s := testServer(t, Config{DB: testDB(t)})
	c := testClient(t, s, DialOptions{ReadOnly: true})
	if _, err := c.NewObject(paperschema.TypeGateInterface, ""); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
	if _, err := c.Ping(1); err != nil {
		t.Fatal(err)
	}
}

// TestServeSessionCap: past MaxSessions a connection is answered
// ErrServerBusy on its first request and closed.
func TestServeSessionCap(t *testing.T) {
	s := testServer(t, Config{DB: testDB(t), MaxSessions: 1})
	c := testClient(t, s, DialOptions{})
	if _, err := c.Ping(1); err != nil {
		t.Fatal(err)
	}
	if _, err := DialConn(s.Pipe(), DialOptions{}); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("over-cap dial: got %v, want ErrServerBusy", err)
	}
}

// TestServeStats: the counters move and the reply carries backend stats.
func TestServeStats(t *testing.T) {
	s := testServer(t, Config{DB: testDB(t)})
	c := testClient(t, s, DialOptions{})
	if _, err := c.Ping(1); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Server.Sessions != 1 || reply.Server.Requests < 2 || reply.DB == nil {
		t.Fatalf("stats reply = %+v", reply.Server)
	}
}

// TestServeCorruptFrameTearsDownSession: a CRC-invalid frame poisons the
// stream; the server counts it and drops the connection instead of
// guessing.
func TestServeCorruptFrameTearsDownSession(t *testing.T) {
	s := testServer(t, Config{DB: testDB(t)})
	conn := s.Pipe()
	defer conn.Close()
	if err := conn.Send([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err == nil {
		t.Fatal("expected the server to drop the connection")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().ProtoErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("proto_errors never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeDrain: Shutdown stops new work, finishes what is in flight,
// and reclaims every session's transaction and pins.
func TestServeDrain(t *testing.T) {
	db := testDB(t)
	s, err := New(Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	c := testClient(t, s, DialOptions{User: "alice"})
	iface, err := c.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}
	// Leave a transaction holding a lock and a snapshot pinned.
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetAttr(iface, "Width", domain.Int(3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SnapOpen(); err != nil {
		t.Fatal(err)
	}

	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ping(1); err == nil {
		t.Fatal("post-drain request succeeded")
	}

	st := s.Stats()
	if !st.Draining || st.Sessions != 0 {
		t.Fatalf("post-drain stats: %+v", st)
	}
	if st.TxnsAborted != 1 || st.SnapsReleased != 1 {
		t.Fatalf("teardown counters: aborted=%d released=%d, want 1/1", st.TxnsAborted, st.SnapsReleased)
	}
	if p := db.Stats().MVCC.Pins; p != 0 {
		t.Fatalf("pins after drain = %d, want 0", p)
	}
	lt := db.Txns().LockTableStats()
	if lt.Objects != 0 || lt.Granted != 0 || lt.Queued != 0 || lt.Waiters != 0 {
		t.Fatalf("lock table after drain: %+v", lt)
	}
	// The uncommitted transactional write must have rolled back.
	if v, err := db.GetAttr(iface, "Width"); err == nil && v != nil && v.Equal(cadcam.Int(3)) {
		t.Fatal("aborted transactional write is visible")
	}
	// New connections are refused outright.
	conn := s.Pipe()
	if _, err := DialConn(conn, DialOptions{}); err == nil {
		t.Fatal("dial after drain succeeded")
	}
}
