package serve

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cadcam"
	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

// stallFeed is an injectable WAL-counter source for the admission meter:
// tests flip it between a healthy profile and a stalled one.
type stallFeed struct {
	stalled atomic.Bool
	tick    atomic.Uint64
}

func (f *stallFeed) stats() cadcam.WALStats {
	n := f.tick.Add(1)
	if f.stalled.Load() {
		// Queue far over bound and zero records committed since the
		// last sample: both busy signals at once.
		return cadcam.WALStats{Records: 1, Queued: 1 << 20, StallNs: n * uint64(time.Second)}
	}
	// Healthy: the queue drains and commits are cheap.
	return cadcam.WALStats{Records: n * 100, Queued: 0, StallNs: n * 1000}
}

func waitBusy(t *testing.T, s *Server, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Busy() != want {
		if time.Now().After(deadline) {
			t.Fatalf("meter never reached busy=%v", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeBackpressure is the backpressure regression battery: an
// injected WAL stall must surface as a typed ErrServerBusy to new
// write-path requests, while requests already admitted to a session
// pipeline complete — in order — and read requests keep flowing. When
// the stall clears, writes are admitted again.
func TestServeBackpressure(t *testing.T) {
	db := testDB(t)
	feed := &stallFeed{}
	s := testServer(t, Config{
		DB:          db,
		WALStats:    feed.stats,
		StallWindow: 5 * time.Millisecond,
	})
	c := testClient(t, s, DialOptions{User: "bp"})

	iface, err := c.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}

	// Pipeline a burst of writes, then flip the stall on while they are
	// still queued. Admission is decided when a request is read off the
	// transport, so everything below was admitted before the flip and
	// must complete in order despite the stall.
	const burst = 50
	calls := make([]*Call, burst)
	for i := range calls {
		calls[i] = c.Go(&Request{Kind: ReqSet, Sur: iface, Name: "Width", Value: domain.Int(int64(i))})
	}
	feed.stalled.Store(true)
	waitBusy(t, s, true)
	for i, call := range calls {
		if _, err := call.Wait(); err != nil {
			t.Fatalf("admitted pipelined write %d rejected: %v", i, err)
		}
	}
	if v, err := c.GetAttr(iface, "Width"); err != nil || !v.Equal(domain.Int(burst-1)) {
		t.Fatalf("pipelined writes applied out of order: %v, %v", v, err)
	}

	// New write-path requests are shed with the typed error...
	if err := c.SetAttr(iface, "Width", domain.Int(999)); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("write during stall: got %v, want ErrServerBusy", err)
	}
	if _, err := c.Begin(); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("begin during stall: got %v, want ErrServerBusy", err)
	}
	// ...while the read path stays open.
	if v, err := c.GetAttr(iface, "Width"); err != nil || !v.Equal(domain.Int(burst-1)) {
		t.Fatalf("read during stall: %v, %v", v, err)
	}
	if _, err := c.Query("gates", ""); err != nil {
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("query during stall: %v", err)
		}
	}
	if st := s.Stats(); st.BusyRejected < 2 || st.BusyTicks == 0 || !st.Busy {
		t.Fatalf("busy accounting: %+v", st)
	}

	// Stall clears → writes are admitted again.
	feed.stalled.Store(false)
	waitBusy(t, s, false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.SetAttr(iface, "Width", domain.Int(1000)); err == nil {
			break
		} else if !errors.Is(err, ErrServerBusy) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never readmitted after stall cleared")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeMeterWedgedQueue: the third busy signal — records stop
// committing while the queue is non-empty — needs two consecutive
// windows to trip, so a single slow sample does not flap the server
// into shedding.
func TestServeMeterWedgedQueue(t *testing.T) {
	var wedged atomic.Bool
	feed := func() cadcam.WALStats {
		if wedged.Load() {
			return cadcam.WALStats{Records: 7, Queued: 3} // small queue, frozen
		}
		return cadcam.WALStats{Records: 7, Queued: 0}
	}
	s := testServer(t, Config{DB: testDB(t), WALStats: feed, StallWindow: 5 * time.Millisecond})
	time.Sleep(30 * time.Millisecond)
	if s.Busy() {
		t.Fatal("healthy idle server reported busy")
	}
	wedged.Store(true)
	waitBusy(t, s, true)
	wedged.Store(false)
	waitBusy(t, s, false)
}
