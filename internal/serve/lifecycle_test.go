package serve

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"cadcam"
	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

// TestServeLifecycleChurn is the session-lifecycle race battery: many
// goroutines churn connect → begin a transaction / pin a snapshot /
// leave work half-done → hard-disconnect, while the server keeps
// running. After the churn drains, nothing a dead session owned may
// survive it: zero MVCC pins, an empty lock table, zero sessions.
//
// Run under -race this doubles as the data-race battery for the whole
// reader/worker/teardown machinery.
func TestServeLifecycleChurn(t *testing.T) {
	db := testDB(t)
	iface, err := db.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DB: db, PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}

	const churners = 256
	var wg sync.WaitGroup
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 8; i++ {
				c, err := DialConn(s.Pipe(), DialOptions{User: "churn"})
				if err != nil {
					continue // drain raced us; nothing leaked either way
				}
				// Mix of abandoned state: open txns with a held lock,
				// pinned snapshots, pipelined writes never waited for.
				switch rng.Intn(4) {
				case 0:
					c.Go(&Request{Kind: ReqBegin})
					c.Go(&Request{Kind: ReqSet, Sur: iface, Name: "Width", Value: domain.Int(int64(i))})
				case 1:
					c.Go(&Request{Kind: ReqSnapOpen})
					c.Go(&Request{Kind: ReqSnapOpen})
				case 2:
					c.Go(&Request{Kind: ReqBegin})
					c.Go(&Request{Kind: ReqSnapOpen})
					c.Go(&Request{Kind: ReqGet, Sur: iface, Name: "Width"})
				case 3:
					_, _ = c.Begin()
					_, _, _ = c.SnapOpen()
				}
				// Hard disconnect: no Abort, no SnapClose, no goodbye.
				c.Close()
			}
		}(g)
	}
	wg.Wait()

	if err := s.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if st := s.Stats(); st.Sessions != 0 {
		t.Fatalf("sessions after drain = %d, want 0", st.Sessions)
	}
	if p := db.Stats().MVCC.Pins; p != 0 {
		t.Fatalf("MVCC pins after churn+drain = %d, want 0", p)
	}
	lt := db.Txns().LockTableStats()
	if lt.Objects != 0 || lt.Granted != 0 || lt.Queued != 0 || lt.Waiters != 0 {
		t.Fatalf("lock table after churn+drain: %+v", lt)
	}
	// The database must still be fully operational.
	if err := db.SetAttr(iface, "Width", cadcam.Int(1)); err != nil {
		t.Fatalf("db wedged after churn: %v", err)
	}
}

// TestServeSoak is a scaled-down in-process cousin of the cadbench
// -serve soak: N concurrent sessions over the pipe transport running
// mixed traffic to completion, then a drain with the same leak oracle.
// CADCAM_SOAK_CONNS scales it up (CI runs the 10k-connection version
// through cadbench; this keeps a small always-on copy in `go test`).
func TestServeSoak(t *testing.T) {
	conns := 64
	if v := os.Getenv("CADCAM_SOAK_CONNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CADCAM_SOAK_CONNS: %v", err)
		}
		conns = n
	} else if testing.Short() {
		conns = 16
	}
	db := testDB(t)
	if err := db.DefineClass("gates", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DB: db, MaxSessions: conns})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := DialConn(s.Pipe(), DialOptions{User: "soak"})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sur, err := c.NewObject(paperschema.TypeGateInterface, "gates")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				if err := c.SetAttr(sur, "Width", domain.Int(int64(i))); err != nil {
					errs <- err
					return
				}
				if _, err := c.GetAttr(sur, "Width"); err != nil {
					errs <- err
					return
				}
				if i%5 == 0 {
					if _, err := c.Begin(); err != nil {
						errs <- err
						return
					}
					if err := c.SetAttr(sur, "Length", domain.Int(int64(i))); err != nil {
						errs <- err
						return
					}
					if err := c.Commit(); err != nil {
						errs <- err
						return
					}
				}
				if i%7 == 0 {
					h, _, err := c.SnapOpen()
					if err != nil {
						errs <- err
						return
					}
					if _, err := c.SnapGet(h, sur, "Width"); err != nil {
						errs <- err
						return
					}
					if err := c.SnapClose(h); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := s.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p := db.Stats().MVCC.Pins; p != 0 {
		t.Fatalf("pins after soak = %d, want 0", p)
	}
	lt := db.Txns().LockTableStats()
	if lt.Objects != 0 || lt.Granted != 0 {
		t.Fatalf("lock table after soak: %+v", lt)
	}
}
