package serve

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cadcam"
	"cadcam/internal/fault"
	"cadcam/internal/repl"
)

// Serve failpoints, used by the crash matrix:
//
//	fpAckGap     — between a mutating operation becoming durable and the
//	               acknowledgment response being written. A kill here
//	               leaves the operation in the journal but unreported:
//	               the client never acked it, so the durable-ack
//	               multiset inclusion must still hold. The error kind
//	               turns a durable success into an error response — the
//	               legal "unknown outcome" the protocol documents.
//	fpDrainAbort — once per session transaction aborted by the drain
//	               path, before the abort executes. A kill here dies
//	               mid-drain with compensating records half-written;
//	               recovery must replay the surviving journal exactly.
var (
	fpAckGap     = fault.New("serve/ack-gap")
	fpDrainAbort = fault.New("serve/drain-abort")
)

// Config configures a Server. Exactly one of DB and Follower must be
// set: DB serves read-write sessions over a primary database, Follower
// serves read-only sessions over a WAL-shipped replica (the same
// transport and protocol; mutations are rejected with CodeReadOnly).
type Config struct {
	DB       *cadcam.Database
	Follower *cadcam.Follower

	// AuthToken, when non-empty, must be presented by every Hello.
	AuthToken string

	// MaxSessions caps concurrently established sessions; a session
	// past the cap gets CodeBusy on its first request and is closed.
	// 0 means the default (16384).
	MaxSessions int
	// PipelineDepth bounds the per-session queue of admitted-but-not-
	// yet-executed pipelined requests; beyond it the reader stops
	// pulling from the transport, which backpressures the client
	// through the connection. 0 means the default (64).
	PipelineDepth int
	// MaxSnapshots caps pinned snapshots per session (0: default 64) so
	// one client cannot pin unbounded MVCC history.
	MaxSnapshots int

	// Admission control. The meter samples the WAL group-commit
	// counters every StallWindow and declares the server busy when the
	// journal queue exceeds MaxQueuedWAL records or the mean durability
	// stall per committed record exceeds MaxStallPerRecord. While busy,
	// new write-path requests (New/Set/Bind/Unbind/Delete/Begin) are
	// rejected with CodeBusy; requests already admitted to a session
	// pipeline, and all read-path requests, still execute.
	StallWindow       time.Duration // 0: 100ms
	MaxQueuedWAL      int           // 0: 4096 records
	MaxStallPerRecord time.Duration // 0: 25ms

	// WALStats overrides where the admission meter reads the WAL
	// counters (default: DB.Stats().WAL). Tests inject synthetic stalls
	// through it.
	WALStats func() cadcam.WALStats

	// Logf, when set, receives one line per torn-down session that
	// ended on a transport or protocol error.
	Logf func(format string, args ...any)
}

func (c *Config) maxSessions() int {
	if c.MaxSessions <= 0 {
		return 16384
	}
	return c.MaxSessions
}

func (c *Config) pipelineDepth() int {
	if c.PipelineDepth <= 0 {
		return 64
	}
	return c.PipelineDepth
}

func (c *Config) maxSnapshots() int {
	if c.MaxSnapshots <= 0 {
		return 64
	}
	return c.MaxSnapshots
}

func (c *Config) stallWindow() time.Duration {
	if c.StallWindow <= 0 {
		return 100 * time.Millisecond
	}
	return c.StallWindow
}

func (c *Config) maxQueuedWAL() int {
	if c.MaxQueuedWAL <= 0 {
		return 4096
	}
	return c.MaxQueuedWAL
}

func (c *Config) maxStallPerRecord() time.Duration {
	if c.MaxStallPerRecord <= 0 {
		return 25 * time.Millisecond
	}
	return c.MaxStallPerRecord
}

// ServerStats counts the server's lifetime activity. All fields are
// monotonic except Sessions, Busy and Draining, which describe the
// current state.
type ServerStats struct {
	Sessions      int    `json:"sessions"`       // established right now
	SessionsTotal uint64 `json:"sessions_total"` // lifetime accepts
	Requests      uint64 `json:"requests"`       // requests admitted to a pipeline
	Responses     uint64 `json:"responses"`      // responses written
	OpErrors      uint64 `json:"op_errors"`      // responses with an application error code
	BusyRejected  uint64 `json:"busy_rejected"`  // admission-control rejections
	DrainRejected uint64 `json:"drain_rejected"` // requests refused during drain
	ProtoErrors   uint64 `json:"proto_errors"`   // corrupt frames / protocol violations
	TxnsAborted   uint64 `json:"txns_aborted"`   // session txns aborted by teardown
	SnapsReleased uint64 `json:"snaps_released"` // pins released by teardown
	PipelineHW    int64  `json:"pipeline_hw"`    // high-water of any session's queue
	BusyTicks     uint64 `json:"busy_ticks"`     // meter ticks that declared busy
	Busy          bool   `json:"busy"`
	Draining      bool   `json:"draining"`
}

// Server owns the sessions over one backend. Create with New, feed it
// connections with Serve/ServeConn/Pipe, stop it with Shutdown.
type Server struct {
	cfg Config
	db  *cadcam.Database
	fol *cadcam.Follower

	mu        sync.Mutex
	sessions  map[*session]struct{}
	listeners map[net.Listener]struct{}
	wg        sync.WaitGroup

	drainCh   chan struct{}
	drainOnce sync.Once
	meterStop chan struct{}
	meterOnce sync.Once
	meterDone chan struct{}

	busy atomic.Bool

	sessionsTotal atomic.Uint64
	requests      atomic.Uint64
	responses     atomic.Uint64
	opErrors      atomic.Uint64
	busyRejected  atomic.Uint64
	drainRejected atomic.Uint64
	protoErrors   atomic.Uint64
	txnsAborted   atomic.Uint64
	snapsReleased atomic.Uint64
	pipelineHW    atomic.Int64
	busyTicks     atomic.Uint64
}

// New creates a server over a primary database or a follower and starts
// its admission meter.
func New(cfg Config) (*Server, error) {
	if (cfg.DB == nil) == (cfg.Follower == nil) {
		return nil, errors.New("serve: exactly one of Config.DB and Config.Follower must be set")
	}
	s := &Server{
		cfg:       cfg,
		db:        cfg.DB,
		fol:       cfg.Follower,
		sessions:  make(map[*session]struct{}),
		listeners: make(map[net.Listener]struct{}),
		drainCh:   make(chan struct{}),
		meterStop: make(chan struct{}),
		meterDone: make(chan struct{}),
	}
	go s.meter()
	return s, nil
}

// walStats reads the WAL counters the admission meter watches.
func (s *Server) walStats() cadcam.WALStats {
	if s.cfg.WALStats != nil {
		return s.cfg.WALStats()
	}
	if s.db != nil {
		return s.db.Stats().WAL
	}
	return cadcam.WALStats{}
}

// meter is the admission-control sampling loop: it watches the WAL
// group-commit counters and flips the busy bit when the journal is
// stalling. The two signals cover the two stall shapes: a queue that
// outgrows its bound (fsync blocked — records pile up faster than they
// drain) and a per-record durability wait that exceeds the budget
// (fsync pathologically slow — the queue drains, but each commit costs
// tens of milliseconds).
func (s *Server) meter() {
	defer close(s.meterDone)
	window := s.cfg.stallWindow()
	t := time.NewTicker(window)
	defer t.Stop()
	var last cadcam.WALStats
	stalledTicks := 0
	for {
		select {
		case <-s.meterStop:
			return
		case <-t.C:
			w := s.walStats()
			dRecords := w.Records - last.Records
			dStall := w.StallNs - last.StallNs
			busy := w.Queued > s.cfg.maxQueuedWAL()
			if dRecords > 0 && time.Duration(dStall/dRecords) > s.cfg.maxStallPerRecord() {
				busy = true
			}
			// Queue present but nothing committed for two consecutive
			// windows: the pipeline is wedged even if the queue is small.
			if dRecords == 0 && w.Queued > 0 {
				stalledTicks++
				if stalledTicks >= 2 {
					busy = true
				}
			} else {
				stalledTicks = 0
			}
			if busy {
				s.busyTicks.Add(1)
			}
			s.busy.Store(busy)
			last = w
		}
	}
}

// Busy reports the admission meter's current verdict.
func (s *Server) Busy() bool { return s.busy.Load() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Serve accepts connections from l until the listener is closed (which
// Shutdown does) and runs a session per connection. It returns the
// accept error that ended the loop (nil after a clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.Draining() {
		s.mu.Unlock()
		l.Close()
		return ErrDraining
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.Draining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.ServeConn(conn)
	}
}

// ServeConn runs a session over one byte-stream connection (a TCP
// conn, a unix socket, one end of net.Pipe). It returns immediately;
// the session runs on its own goroutines until the peer disconnects or
// the server drains.
func (s *Server) ServeConn(rw net.Conn) {
	s.StartConn(repl.StreamConn(rw))
}

// StartConn runs a session over an already-framed message connection.
// The drain check, session registration and wg.Add share one critical
// section with Shutdown's drain flip, so a session either starts before
// the drain (and is waited for) or not at all.
func (s *Server) StartConn(conn repl.Conn) {
	s.mu.Lock()
	if s.Draining() {
		s.mu.Unlock()
		conn.Close()
		return
	}
	over := len(s.sessions) >= s.cfg.maxSessions()
	sess := &session{
		srv:         s,
		conn:        conn,
		capRejected: over,
		snaps:       make(map[uint64]*cadcam.SnapshotView),
		done:        make(chan struct{}),
	}
	s.sessions[sess] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.sessionsTotal.Add(1)
	go func() {
		defer s.wg.Done()
		sess.run()
	}()
}

// Pipe creates an in-process connection served by this server and
// returns the client end — the no-file-descriptor transport tests and
// the 10k-connection soak use.
func (s *Server) Pipe() repl.Conn {
	a, b := repl.Pipe()
	s.StartConn(b)
	return a
}

func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	return ServerStats{
		Sessions:      n,
		SessionsTotal: s.sessionsTotal.Load(),
		Requests:      s.requests.Load(),
		Responses:     s.responses.Load(),
		OpErrors:      s.opErrors.Load(),
		BusyRejected:  s.busyRejected.Load(),
		DrainRejected: s.drainRejected.Load(),
		ProtoErrors:   s.protoErrors.Load(),
		TxnsAborted:   s.txnsAborted.Load(),
		SnapsReleased: s.snapsReleased.Load(),
		PipelineHW:    s.pipelineHW.Load(),
		BusyTicks:     s.busyTicks.Load(),
		Busy:          s.busy.Load(),
		Draining:      s.Draining(),
	}
}

// Shutdown drains the server: stop accepting (close every listener),
// let every session finish the requests already admitted to its
// pipeline, abort idle session transactions, release pinned snapshots,
// and close the connections. Sessions still running when the timeout
// expires are force-closed (their teardown still aborts and releases).
// Shutdown is idempotent; concurrent calls share one drain.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.drainOnce.Do(func() { close(s.drainCh) })
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-time.After(timeout):
		// Force the stragglers: closing the connection unblocks their
		// readers, and teardown still aborts the txn and releases pins.
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		select {
		case <-done:
		case <-time.After(timeout):
			forced = errors.New("serve: sessions did not drain in time")
		}
	}
	s.meterOnce.Do(func() { close(s.meterStop) })
	<-s.meterDone
	return forced
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
