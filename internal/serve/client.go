package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"cadcam/internal/domain"
	"cadcam/internal/repl"
)

// DialOptions configure the Hello a new client sends.
type DialOptions struct {
	Token    string // auth token (must match the server's AuthToken)
	User     string // identity stamped on transactions this session begins
	ReadOnly bool   // ask for a read-only session
}

// Call is one in-flight pipelined request. The zero Code/Err pairing is
// resolved when Done() fires.
type Call struct {
	Req  *Request
	Resp *Response
	Err  error
	done chan struct{}
}

// Done returns a channel closed when the response (or a transport
// failure) has arrived.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks for the response and maps its code to a typed error.
func (c *Call) Wait() (*Response, error) {
	<-c.done
	if c.Err != nil {
		return nil, c.Err
	}
	if err := codeError(c.Resp); err != nil {
		return c.Resp, err
	}
	return c.Resp, nil
}

// Client is a pipelined protocol client. Any number of goroutines may
// issue requests concurrently; requests are sent in a single order and
// the server answers in that same order, so responses are matched FIFO
// and cross-checked against the echoed correlation id.
type Client struct {
	conn repl.Conn

	// sendMu serializes senders so the wire order matches the pending
	// FIFO. It is never held by the read side: a sender blocked in a
	// backpressured Send must not stop readLoop from draining responses
	// (that is exactly the deadlock pipelining invites).
	sendMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending []*Call
	closed  bool
	err     error

	readerDone chan struct{}
}

// Dial connects to a cadserve listener over TCP and establishes the
// session.
func Dial(addr string, opts DialOptions) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := DialConn(repl.StreamConn(nc), opts)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// DialConn establishes a session over an existing transport (a
// Server.Pipe() end, a wrapped net.Conn, ...). On error the transport
// is left to the caller.
func DialConn(conn repl.Conn, opts DialOptions) (*Client, error) {
	c := &Client{conn: conn, readerDone: make(chan struct{})}
	go c.readLoop()
	var flags byte
	if opts.ReadOnly {
		flags |= FlagReadOnly
	}
	_, err := c.call(&Request{
		Kind:  ReqHello,
		Flags: flags,
		Snap:  ProtocolVersion,
		Name:  opts.Token,
		Name2: opts.User,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Go issues a request without waiting: the returned Call completes when
// its response arrives. This is the pipelining primitive — issue many,
// then Wait in order.
func (c *Client) Go(req *Request) *Call {
	call := &Call{Req: req, done: make(chan struct{})}
	c.sendMu.Lock()
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		c.sendMu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		call.Err = err
		close(call.done)
		return call
	}
	c.nextID++
	req.ID = c.nextID
	c.pending = append(c.pending, call)
	c.mu.Unlock()
	// Send under sendMu only: a backpressured transport blocks here,
	// and readLoop keeps draining responses (which is what eventually
	// unblocks the transport).
	err := c.conn.Send(req.Encode())
	c.sendMu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("serve: send: %w", err))
	}
	return call
}

// call issues a request and waits for its typed result.
func (c *Client) call(req *Request) (*Response, error) {
	return c.Go(req).Wait()
}

// readLoop matches responses to pending calls in FIFO order.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		raw, err := c.conn.Recv()
		if err != nil {
			c.fail(fmt.Errorf("%w (recv: %v)", ErrClientClosed, err))
			return
		}
		p, err := DecodeResponse(raw)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		if len(c.pending) == 0 {
			c.mu.Unlock()
			c.fail(fmt.Errorf("serve: unsolicited response id %d", p.ID))
			return
		}
		call := c.pending[0]
		c.pending = c.pending[1:]
		c.mu.Unlock()
		if p.ID != call.Req.ID {
			call.Err = fmt.Errorf("serve: response id %d for request id %d", p.ID, call.Req.ID)
			close(call.done)
			c.fail(call.Err)
			return
		}
		call.Resp = p
		close(call.done)
	}
}

// fail poisons the client: the transport closes, and every pending and
// future call resolves with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.conn.Close()
	for _, call := range pending {
		call.Err = err
		close(call.done)
	}
}

// Close tears the session down. The server reclaims the session's
// transaction and pins when it observes the disconnect.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	<-c.readerDone
	return nil
}

// --- typed wrappers -------------------------------------------------

// Ping round-trips a liveness probe echoing seq.
func (c *Client) Ping(seq uint64) (uint64, error) {
	p, err := c.call(&Request{Kind: ReqPing, Snap: seq})
	if err != nil {
		return 0, err
	}
	return p.Seq, nil
}

// Stats fetches the server's counters plus its backend's stats.
func (c *Client) Stats() (*StatsReply, error) {
	p, err := c.call(&Request{Kind: ReqStats})
	if err != nil {
		return nil, err
	}
	var reply StatsReply
	if err := json.Unmarshal(p.Blob, &reply); err != nil {
		return nil, fmt.Errorf("serve: stats blob: %w", err)
	}
	return &reply, nil
}

// NewObject creates an object of a type in a class.
func (c *Client) NewObject(typeName, className string) (domain.Surrogate, error) {
	p, err := c.call(&Request{Kind: ReqNew, Name: typeName, Name2: className})
	if err != nil {
		return 0, err
	}
	return p.Sur, nil
}

// GetAttr reads an attribute, resolving inheritance server-side.
func (c *Client) GetAttr(sur domain.Surrogate, name string) (domain.Value, error) {
	p, err := c.call(&Request{Kind: ReqGet, Sur: sur, Name: name})
	if err != nil {
		return nil, err
	}
	return p.Value, nil
}

// SetAttr writes an attribute.
func (c *Client) SetAttr(sur domain.Surrogate, name string, v domain.Value) error {
	_, err := c.call(&Request{Kind: ReqSet, Sur: sur, Name: name, Value: v})
	return err
}

// Bind creates an inheritance relationship object.
func (c *Client) Bind(relType string, inheritor, transmitter domain.Surrogate) (domain.Surrogate, error) {
	p, err := c.call(&Request{Kind: ReqBind, Name: relType, Sur: inheritor, Sur2: transmitter})
	if err != nil {
		return 0, err
	}
	return p.Sur, nil
}

// Unbind severs an inheritance relationship.
func (c *Client) Unbind(relType string, inheritor domain.Surrogate) error {
	_, err := c.call(&Request{Kind: ReqUnbind, Name: relType, Sur: inheritor})
	return err
}

// Delete removes an object.
func (c *Client) Delete(sur domain.Surrogate) error {
	_, err := c.call(&Request{Kind: ReqDelete, Sur: sur})
	return err
}

// Begin opens the session transaction and returns its id.
func (c *Client) Begin() (uint64, error) {
	p, err := c.call(&Request{Kind: ReqBegin})
	if err != nil {
		return 0, err
	}
	return p.Seq, nil
}

// Commit commits the session transaction.
func (c *Client) Commit() error {
	_, err := c.call(&Request{Kind: ReqCommit})
	return err
}

// Abort rolls the session transaction back.
func (c *Client) Abort() error {
	_, err := c.call(&Request{Kind: ReqAbort})
	return err
}

// Query runs a declarative query against committed state.
func (c *Client) Query(className, where string) ([]domain.Surrogate, error) {
	p, err := c.call(&Request{Kind: ReqQuery, Name: className, Name2: where})
	if err != nil {
		return nil, err
	}
	return p.Surs, nil
}

// Explain returns the query plan text.
func (c *Client) Explain(className, where string) (string, error) {
	p, err := c.call(&Request{Kind: ReqExplain, Name: className, Name2: where})
	if err != nil {
		return "", err
	}
	return string(p.Blob), nil
}

// SnapOpen pins a snapshot server-side; reads through the returned
// handle see a frozen, consistent state until SnapClose.
func (c *Client) SnapOpen() (handle, seq uint64, err error) {
	p, err := c.call(&Request{Kind: ReqSnapOpen})
	if err != nil {
		return 0, 0, err
	}
	return uint64(p.Sur), p.Seq, nil
}

// SnapGet reads an attribute at a pinned snapshot.
func (c *Client) SnapGet(handle uint64, sur domain.Surrogate, name string) (domain.Value, error) {
	p, err := c.call(&Request{Kind: ReqSnapGet, Snap: handle, Sur: sur, Name: name})
	if err != nil {
		return nil, err
	}
	return p.Value, nil
}

// SnapClose releases a pinned snapshot.
func (c *Client) SnapClose(handle uint64) error {
	_, err := c.call(&Request{Kind: ReqSnapClose, Snap: handle})
	return err
}
