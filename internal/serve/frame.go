// Package serve implements the multi-session network service layer: a
// binary, CRC-framed request/response protocol over which many
// concurrent clients drive one cadcam.Database (or a read-only
// Follower), per-connection sessions that own transactions and pinned
// snapshots, request pipelining with strictly ordered responses,
// admission control tied to the WAL group-commit stall counters, and
// graceful drain.
//
// The wire format reuses the journal's framing idiom: every message is
// a 4-byte little-endian payload length, a 4-byte CRC32-IEEE of the
// payload, then the payload — so a torn or corrupted transport write is
// detected exactly like a torn journal tail, and the connection is torn
// down rather than guessed at. Payload fields use the persistence
// layer's codec (uvarints, length-prefixed strings, tag-prefixed
// values), which is already fuzz-hardened against adversarial input.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"cadcam/internal/codec"
	"cadcam/internal/domain"
)

// ProtocolVersion is the wire protocol version a Hello negotiates. A
// server rejects any other version — there is exactly one deployed
// protocol so far.
const ProtocolVersion = 1

// Request kinds. Hello must be the first request on a session; every
// other kind requires the session to be established.
const (
	ReqHello     byte = 1  // Name=auth token, Seq=protocol version
	ReqPing      byte = 2  // liveness; echoes Seq
	ReqStats     byte = 3  // server+db counters, JSON in Response.Blob
	ReqNew       byte = 4  // Name=type, Name2=class → Sur
	ReqGet       byte = 5  // Sur, Name → Value (inheritance-resolved)
	ReqSet       byte = 6  // Sur, Name, Value
	ReqBind      byte = 7  // Name=relType, Sur=inheritor, Sur2=transmitter → Sur
	ReqUnbind    byte = 8  // Name=relType, Sur=inheritor
	ReqDelete    byte = 9  // Sur
	ReqBegin     byte = 10 // open the session transaction → Seq=txn id
	ReqCommit    byte = 11 // commit the session transaction
	ReqAbort     byte = 12 // abort the session transaction
	ReqQuery     byte = 13 // Name=class, Name2=where → Surs
	ReqExplain   byte = 14 // Name=class, Name2=where → Blob (plan text)
	ReqSnapOpen  byte = 15 // pin a snapshot → Snap=handle, Seq=pin seq
	ReqSnapGet   byte = 16 // Snap=handle, Sur, Name → Value at the pin
	ReqSnapClose byte = 17 // Snap=handle: release the pin

	reqKindMax = ReqSnapClose
)

// ReqHello flags.
const (
	// FlagReadOnly asks for a read-only session; mutating requests are
	// rejected with CodeReadOnly. Sessions served by a Follower backend
	// are read-only whether or not the client asks.
	FlagReadOnly byte = 1
)

// Response codes. CodeOK is success; everything else carries the error
// in Msg. Codes exist so clients can map failures onto typed errors
// without parsing messages.
const (
	CodeOK         byte = 0 // success
	CodeError      byte = 1 // application error (bad surrogate, constraint, ...)
	CodeBusy       byte = 2 // admission control rejected the request (ErrServerBusy)
	CodeReadOnly   byte = 3 // mutation on a read-only session (ErrReadOnly)
	CodeBadRequest byte = 4 // malformed or out-of-protocol request
	CodeDraining   byte = 5 // server is draining; no new work (ErrDraining)
	CodeAuth       byte = 6 // Hello rejected (bad token or version)

	codeMax = CodeAuth
)

// frameHeader is the length+CRC prefix every message carries.
const frameHeader = 8

// maxFrameName bounds any one string field a decoder will accept, and
// maxFrameSurs bounds a surrogate list, so corrupt or adversarial
// length fields cannot balloon memory.
const (
	maxFrameName = 1 << 20
	maxFrameSurs = 1 << 22
)

// ErrFrame reports a transport message that failed CRC or structural
// validation. The session is torn down: a corrupt frame means the
// transport lied, and the protocol has no way to resynchronize inside a
// poisoned stream.
var ErrFrame = errors.New("serve: corrupt frame")

// Request is one client→server message. ID is the pipeline correlation
// id: the client assigns them strictly increasing per connection, and
// the server echoes each one back in the matching Response, in request
// order.
type Request struct {
	ID    uint64
	Kind  byte
	Flags byte
	Snap  uint64            // snapshot handle (ReqSnapGet/ReqSnapClose)
	Sur   domain.Surrogate  // primary object argument
	Sur2  domain.Surrogate  // secondary object argument (Bind transmitter)
	Name  string            // attr / class / relType / type / token
	Name2 string            // second name (class of ReqNew, where of ReqQuery)
	Value domain.Value      // ReqSet argument
}

// Encode serializes the request with the CRC frame header.
func (q *Request) Encode() []byte {
	var b codec.Buf
	b.Byte(q.Kind)
	b.Byte(q.Flags)
	b.Uvarint(q.ID)
	b.Uvarint(q.Snap)
	b.Sur(q.Sur)
	b.Sur(q.Sur2)
	b.Str(q.Name)
	b.Str(q.Name2)
	b.Value(q.Value)
	return frameBytes(b.Bytes())
}

// DecodeRequest parses and CRC-checks one encoded request. Any
// truncation, checksum mismatch, oversized field, unknown kind or
// trailing garbage yields ErrFrame.
func DecodeRequest(raw []byte) (*Request, error) {
	payload, err := framePayload(raw)
	if err != nil {
		return nil, err
	}
	r := codec.NewReader(payload)
	q := &Request{Kind: r.Byte(), Flags: r.Byte()}
	if q.Kind < ReqHello || q.Kind > reqKindMax {
		return nil, ErrFrame
	}
	q.ID = r.Uvarint()
	q.Snap = r.Uvarint()
	q.Sur = r.Sur()
	q.Sur2 = r.Sur()
	q.Name = r.Str()
	q.Name2 = r.Str()
	q.Value = r.Value()
	if r.Err() != nil || r.Rest() != 0 ||
		len(q.Name) > maxFrameName || len(q.Name2) > maxFrameName {
		return nil, ErrFrame
	}
	if domain.IsNull(q.Value) {
		q.Value = nil
	}
	return q, nil
}

// Response is one server→client message. Responses are written in
// request order; ID echoes the request's correlation id so a pipelined
// client can double-check the pairing.
type Response struct {
	ID   uint64
	Kind byte // echoes the request kind
	Code byte
	Msg  string             // error message when Code != CodeOK
	Sur  domain.Surrogate   // created surrogate (New/Bind)
	Seq  uint64             // txn id / snapshot handle / pin seq / echo
	Value domain.Value      // Get/SnapGet result
	Surs  []domain.Surrogate // Query result
	Blob  []byte             // Stats JSON / Explain text
}

// Encode serializes the response with the CRC frame header.
func (p *Response) Encode() []byte {
	var b codec.Buf
	b.Byte(p.Kind)
	b.Byte(p.Code)
	b.Uvarint(p.ID)
	b.Uvarint(p.Seq)
	b.Sur(p.Sur)
	b.Str(p.Msg)
	b.Value(p.Value)
	b.Surs(p.Surs)
	b.Uvarint(uint64(len(p.Blob)))
	payload := append(b.Bytes(), p.Blob...)
	return frameBytes(payload)
}

// DecodeResponse parses and CRC-checks one encoded response.
func DecodeResponse(raw []byte) (*Response, error) {
	payload, err := framePayload(raw)
	if err != nil {
		return nil, err
	}
	r := codec.NewReader(payload)
	p := &Response{Kind: r.Byte(), Code: r.Byte()}
	if p.Kind < ReqHello || p.Kind > reqKindMax || p.Code > codeMax {
		return nil, ErrFrame
	}
	p.ID = r.Uvarint()
	p.Seq = r.Uvarint()
	p.Sur = r.Sur()
	p.Msg = r.Str()
	p.Value = r.Value()
	p.Surs = r.Surs()
	bl := r.Uvarint()
	if r.Err() != nil || len(p.Msg) > maxFrameName || len(p.Surs) > maxFrameSurs {
		return nil, ErrFrame
	}
	if bl != uint64(r.Rest()) {
		return nil, ErrFrame
	}
	if bl > 0 {
		p.Blob = payload[len(payload)-int(bl):]
	}
	if domain.IsNull(p.Value) {
		p.Value = nil
	}
	return p, nil
}

// frameBytes prefixes a payload with the length+CRC header.
func frameBytes(payload []byte) []byte {
	out := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// framePayload validates the header and returns the payload.
func framePayload(raw []byte) ([]byte, error) {
	if len(raw) < frameHeader+2 {
		return nil, ErrFrame
	}
	length := binary.LittleEndian.Uint32(raw[0:4])
	sum := binary.LittleEndian.Uint32(raw[4:8])
	if uint64(length) != uint64(len(raw)-frameHeader) {
		return nil, ErrFrame
	}
	payload := raw[frameHeader:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrFrame
	}
	return payload, nil
}

// kindName names a request kind for diagnostics.
func kindName(k byte) string {
	switch k {
	case ReqHello:
		return "Hello"
	case ReqPing:
		return "Ping"
	case ReqStats:
		return "Stats"
	case ReqNew:
		return "New"
	case ReqGet:
		return "Get"
	case ReqSet:
		return "Set"
	case ReqBind:
		return "Bind"
	case ReqUnbind:
		return "Unbind"
	case ReqDelete:
		return "Delete"
	case ReqBegin:
		return "Begin"
	case ReqCommit:
		return "Commit"
	case ReqAbort:
		return "Abort"
	case ReqQuery:
		return "Query"
	case ReqExplain:
		return "Explain"
	case ReqSnapOpen:
		return "SnapOpen"
	case ReqSnapGet:
		return "SnapGet"
	case ReqSnapClose:
		return "SnapClose"
	default:
		return fmt.Sprintf("Req(%d)", k)
	}
}
