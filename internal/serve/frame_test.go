package serve

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"cadcam/internal/domain"
)

// sampleRequests covers every request kind with representative field
// shapes: empty and long names, every value kind, zero and large
// surrogates and handles.
func sampleRequests() []*Request {
	return []*Request{
		{Kind: ReqHello, Snap: ProtocolVersion, Name: "token", Name2: "alice", Flags: FlagReadOnly},
		{ID: 1, Kind: ReqPing, Snap: 42},
		{ID: 2, Kind: ReqStats},
		{ID: 3, Kind: ReqNew, Name: "GateInterface", Name2: "gates"},
		{ID: 4, Kind: ReqGet, Sur: 7, Name: "Width"},
		{ID: 5, Kind: ReqSet, Sur: 7, Name: "Width", Value: domain.Int(3)},
		{ID: 6, Kind: ReqSet, Sur: 7, Name: "Name", Value: domain.Str("x")},
		{ID: 7, Kind: ReqSet, Sur: 7, Name: "Ratio", Value: domain.Rl(1.5)},
		{ID: 8, Kind: ReqSet, Sur: 7, Name: "On", Value: domain.Bool(true)},
		{ID: 9, Kind: ReqSet, Sur: 7, Name: "Dir", Value: domain.Sym("IN")},
		{ID: 10, Kind: ReqSet, Sur: 7, Name: "Peer", Value: domain.Ref(9)},
		{ID: 11, Kind: ReqSet, Sur: 7, Name: "Null", Value: nil},
		{ID: 12, Kind: ReqBind, Name: "AllOfGateInterface", Sur: 3, Sur2: 4},
		{ID: 13, Kind: ReqUnbind, Name: "AllOfGateInterface", Sur: 3},
		{ID: 14, Kind: ReqDelete, Sur: ^domain.Surrogate(0)},
		{ID: 15, Kind: ReqBegin},
		{ID: 16, Kind: ReqCommit},
		{ID: 17, Kind: ReqAbort},
		{ID: 18, Kind: ReqQuery, Name: "gates", Name2: "Width = 3 AND Length > 1"},
		{ID: 19, Kind: ReqExplain, Name: "gates", Name2: ""},
		{ID: 20, Kind: ReqSnapOpen},
		{ID: 21, Kind: ReqSnapGet, Snap: 5, Sur: 7, Name: "Width"},
		{ID: ^uint64(0), Kind: ReqSnapClose, Snap: ^uint64(0)},
	}
}

// sampleResponses covers every response code plus each payload shape a
// response can carry.
func sampleResponses() []*Response {
	return []*Response{
		{ID: 1, Kind: ReqHello, Seq: ProtocolVersion},
		{ID: 2, Kind: ReqPing, Seq: 42},
		{ID: 3, Kind: ReqNew, Sur: 99},
		{ID: 4, Kind: ReqGet, Value: domain.Int(7)},
		{ID: 5, Kind: ReqGet, Value: nil},
		{ID: 6, Kind: ReqBegin, Seq: 12345},
		{ID: 7, Kind: ReqQuery, Surs: []domain.Surrogate{1, 2, 3, ^domain.Surrogate(0)}},
		{ID: 8, Kind: ReqQuery, Surs: nil},
		{ID: 9, Kind: ReqStats, Blob: []byte(`{"server":{}}`)},
		{ID: 10, Kind: ReqExplain, Blob: []byte("plan:\n  scan gates\n")},
		{ID: 11, Kind: ReqSet, Code: CodeError, Msg: "no such attribute"},
		{ID: 12, Kind: ReqSet, Code: CodeBusy, Msg: "journal pipeline stalled"},
		{ID: 13, Kind: ReqSet, Code: CodeReadOnly, Msg: "read-only session"},
		{ID: 14, Kind: ReqGet, Code: CodeBadRequest, Msg: "first request must be Hello"},
		{ID: 15, Kind: ReqSet, Code: CodeDraining, Msg: "server is draining"},
		{ID: 16, Kind: ReqHello, Code: CodeAuth, Msg: "bad token"},
		{ID: 17, Kind: ReqSnapOpen, Seq: 88, Sur: 1},
	}
}

func valueEq(a, b domain.Value) bool {
	if domain.IsNull(a) || domain.IsNull(b) {
		return domain.IsNull(a) && domain.IsNull(b)
	}
	return a.Equal(b)
}

func requestEq(a, b *Request) bool {
	if a.ID != b.ID || a.Kind != b.Kind || a.Flags != b.Flags || a.Snap != b.Snap ||
		a.Sur != b.Sur || a.Sur2 != b.Sur2 || a.Name != b.Name || a.Name2 != b.Name2 {
		return false
	}
	return valueEq(a.Value, b.Value)
}

func responseEq(a, b *Response) bool {
	if a.ID != b.ID || a.Kind != b.Kind || a.Code != b.Code || a.Msg != b.Msg ||
		a.Sur != b.Sur || a.Seq != b.Seq || len(a.Surs) != len(b.Surs) ||
		!bytes.Equal(a.Blob, b.Blob) {
		return false
	}
	for i := range a.Surs {
		if a.Surs[i] != b.Surs[i] {
			return false
		}
	}
	return valueEq(a.Value, b.Value)
}

// TestRequestRoundTrip: every request kind survives encode→decode.
func TestRequestRoundTrip(t *testing.T) {
	for _, q := range sampleRequests() {
		got, err := DecodeRequest(q.Encode())
		if err != nil {
			t.Fatalf("%s: %v", kindName(q.Kind), err)
		}
		if !requestEq(q, got) {
			t.Fatalf("%s: round-trip mismatch:\n in %+v\nout %+v", kindName(q.Kind), q, got)
		}
	}
}

// TestResponseRoundTrip: every response shape survives encode→decode.
func TestResponseRoundTrip(t *testing.T) {
	for _, p := range sampleResponses() {
		got, err := DecodeResponse(p.Encode())
		if err != nil {
			t.Fatalf("%s code %d: %v", kindName(p.Kind), p.Code, err)
		}
		if !responseEq(p, got) {
			t.Fatalf("%s: round-trip mismatch:\n in %+v\nout %+v", kindName(p.Kind), p, got)
		}
	}
}

// TestFrameFlipEveryByte: for every sample frame of every type, flipping
// any single byte must make the decoder reject the frame — the CRC (or
// the length check, for header corruption) catches all of them. This is
// the transport-integrity contract: a torn or bit-rotted frame is an
// ErrFrame, never a silently different request.
func TestFrameFlipEveryByte(t *testing.T) {
	check := func(t *testing.T, name string, raw []byte, decode func([]byte) error) {
		for i := range raw {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 0xFF
			if decode(mut) == nil {
				t.Errorf("%s: flipped byte %d/%d accepted", name, i, len(raw))
			}
		}
		for cut := 0; cut < len(raw); cut++ {
			if decode(raw[:cut]) == nil {
				t.Errorf("%s: truncation to %d bytes accepted", name, cut)
			}
		}
		if decode(append(append([]byte(nil), raw...), 0xA5)) == nil {
			t.Errorf("%s: trailing garbage accepted", name)
		}
	}
	for _, q := range sampleRequests() {
		check(t, "req "+kindName(q.Kind), q.Encode(), func(b []byte) error {
			_, err := DecodeRequest(b)
			return err
		})
	}
	for _, p := range sampleResponses() {
		check(t, "resp "+kindName(p.Kind), p.Encode(), func(b []byte) error {
			_, err := DecodeResponse(b)
			return err
		})
	}
}

// reframe wraps a payload in a valid CRC header, for adversarial tests
// where the payload itself is the attack.
func reframe(payload []byte) []byte {
	out := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// TestFrameRejectsBadKindsAndCodes: CRC-valid payloads with out-of-range
// kind or code bytes are protocol errors, not requests.
func TestFrameRejectsBadKindsAndCodes(t *testing.T) {
	bad := &Request{Kind: ReqPing}
	raw := bad.Encode()
	payload := append([]byte(nil), raw[frameHeader:]...)
	payload[0] = reqKindMax + 1
	if _, err := DecodeRequest(reframe(payload)); err == nil {
		t.Fatal("request kind past max accepted")
	}
	payload[0] = 0
	if _, err := DecodeRequest(reframe(payload)); err == nil {
		t.Fatal("request kind 0 accepted")
	}

	resp := (&Response{Kind: ReqPing}).Encode()
	rp := append([]byte(nil), resp[frameHeader:]...)
	rp[1] = codeMax + 1
	if _, err := DecodeResponse(reframe(rp)); err == nil {
		t.Fatal("response code past max accepted")
	}
}

// TestFrameBoundsBlobLength: a response whose blob length field
// disagrees with the actual payload is rejected — in both directions.
func TestFrameBoundsBlobLength(t *testing.T) {
	p := &Response{ID: 1, Kind: ReqStats, Blob: []byte("0123456789")}
	raw := p.Encode()
	payload := append([]byte(nil), raw[frameHeader:]...)
	// The blob length uvarint sits right before the 10 blob bytes.
	idx := len(payload) - len(p.Blob) - 1
	payload[idx] = 11 // claim one more byte than the payload carries
	if _, err := DecodeResponse(reframe(payload)); err == nil {
		t.Fatal("overlong blob length accepted")
	}
	payload[idx] = 9
	if _, err := DecodeResponse(reframe(payload)); err == nil {
		t.Fatal("short blob length (trailing garbage) accepted")
	}
}

// FuzzServeFrameDecode: neither decoder may panic on arbitrary bytes,
// and anything either accepts must re-encode to an identical, decodable
// frame (mirrors FuzzReplFrameDecode).
func FuzzServeFrameDecode(f *testing.F) {
	for _, q := range sampleRequests() {
		f.Add(q.Encode())
	}
	for _, p := range sampleResponses() {
		f.Add(p.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xF5, 0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := DecodeRequest(data); err == nil {
			again, err := DecodeRequest(q.Encode())
			if err != nil {
				t.Fatalf("accepted request does not round-trip: %v", err)
			}
			if !requestEq(q, again) {
				t.Fatalf("request round-trip mismatch: %+v vs %+v", q, again)
			}
		}
		if p, err := DecodeResponse(data); err == nil {
			again, err := DecodeResponse(p.Encode())
			if err != nil {
				t.Fatalf("accepted response does not round-trip: %v", err)
			}
			if !responseEq(p, again) {
				t.Fatalf("response round-trip mismatch: %+v vs %+v", p, again)
			}
		}
	})
}
