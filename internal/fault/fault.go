// Package fault implements deterministic failpoints for crash-recovery
// testing. Production code registers named points at package init and
// evaluates them on the hot path; the whole facility costs one atomic
// load (plus a nil check) per evaluation while disabled, and nothing is
// armed unless a test (or the CADCAM_FAILPOINTS environment variable)
// says so.
//
// A point is armed with an action and a countdown: the Nth evaluation
// after arming fires exactly once. Two action kinds exist:
//
//   - error: the evaluation returns the configured error, simulating an
//     I/O failure (fsync error, write error);
//   - exit: the process terminates immediately with the configured exit
//     code (default 86), simulating a crash at the evaluation site.
//
// The spec grammar, used both by Arm and by CADCAM_FAILPOINTS, is a
// semicolon-separated list of entries:
//
//	wal/sync-error=error(injected)@3; group/leader-encoded=exit
//	wal/torn-write=exit(86,12)@1
//
// `@N` is the countdown (default 1); exit takes an optional exit code
// and an optional site-specific integer argument (e.g. the byte offset
// at which a torn write cuts). Unknown names are legal in a spec — the
// arming is held pending and attaches when the point registers, so env
// activation never depends on package init order.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar activates failpoints from the environment at process start.
const EnvVar = "CADCAM_FAILPOINTS"

// DefaultExitCode is the process exit status of an exit-kind action, so
// a crash-matrix driver can tell an injected crash (86) from a genuine
// worker failure.
const DefaultExitCode = 86

// Kind is the action kind of an armed failpoint.
type Kind uint8

const (
	// KindError makes the evaluation return an error.
	KindError Kind = iota
	// KindExit terminates the process at the evaluation site.
	KindExit
)

// Action is what an armed failpoint does when it fires.
type Action struct {
	Kind Kind
	Err  error // KindError: the error Hit returns
	Code int   // KindExit: process exit status
	Arg  int   // optional site-specific argument (0 = site default)
}

// arming is one armed action with its one-shot countdown.
type arming struct {
	countdown atomic.Int64
	act       Action
}

// Point is one registered failpoint. Points are package-level singletons
// created by New at init time and never removed.
type Point struct {
	name  string
	armed atomic.Pointer[arming]
	hits  atomic.Uint64 // firings, not evaluations
}

var (
	// enabled gates every evaluation; off means Hit/Fire are no-ops.
	enabled atomic.Bool

	mu      sync.Mutex
	points  = make(map[string]*Point)
	pending = make(map[string]*arming) // armed before the point registered
)

// New registers a failpoint (idempotent per name) and returns it. Call
// from package-level var initialization at each injection site.
func New(name string) *Point {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &Point{name: name}
	if a, ok := pending[name]; ok {
		delete(pending, name)
		p.armed.Store(a)
	}
	points[name] = p
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fire evaluates the point and returns the action when it fires, nil
// otherwise. Sites that must do work before acting (write a torn prefix,
// then crash) use Fire and invoke Crash themselves; everyone else uses
// Hit. Exactly one evaluation observes the countdown reaching zero, so a
// firing is one-shot even under concurrent evaluation.
func (p *Point) Fire() *Action {
	if !enabled.Load() {
		return nil
	}
	a := p.armed.Load()
	if a == nil || a.countdown.Add(-1) != 0 {
		return nil
	}
	p.hits.Add(1)
	return &a.act
}

// Hit evaluates the point and performs the action: KindExit terminates
// the process; KindError returns the configured error. Returns nil when
// the point does not fire.
func (p *Point) Hit() error {
	a := p.Fire()
	if a == nil {
		return nil
	}
	if a.Kind == KindExit {
		Crash(*a)
	}
	return a.Err
}

// Crash terminates the process with the action's exit code. Split out so
// torn-write sites can complete their partial write first.
func Crash(a Action) {
	code := a.Code
	if code == 0 {
		code = DefaultExitCode
	}
	os.Exit(code)
}

// Enable turns evaluation on. Arm calls it implicitly.
func Enable() { enabled.Store(true) }

// Disable turns evaluation off without clearing armings.
func Disable() { enabled.Store(false) }

// Reset disables evaluation and clears every arming, pending spec and hit
// counter. Tests that arm points must defer it.
func Reset() {
	enabled.Store(false)
	mu.Lock()
	defer mu.Unlock()
	for _, p := range points {
		p.armed.Store(nil)
		p.hits.Store(0)
	}
	pending = make(map[string]*arming)
}

// Names lists the registered failpoints, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for n := range points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Hits reports how many times the named point has fired since the last
// Reset (0 for unknown names).
func Hits(name string) uint64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// TotalHits sums the firings of every registered point.
func TotalHits() uint64 {
	mu.Lock()
	defer mu.Unlock()
	var n uint64
	for _, p := range points {
		n += p.hits.Load()
	}
	return n
}

// Arm parses a spec, arms the named points (pending for names not yet
// registered) and enables evaluation. Re-arming a point replaces its
// previous arming.
func Arm(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, action, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("fault: bad entry %q (want name=action)", entry)
		}
		name = strings.TrimSpace(name)
		a, err := parseAction(strings.TrimSpace(action))
		if err != nil {
			return fmt.Errorf("fault: %s: %w", name, err)
		}
		mu.Lock()
		if p, ok := points[name]; ok {
			p.armed.Store(a)
		} else {
			pending[name] = a
		}
		mu.Unlock()
	}
	Enable()
	return nil
}

// parseAction parses `error`, `error(msg)`, `exit`, `exit(code)` or
// `exit(code,arg)`, each with an optional `@N` countdown suffix.
func parseAction(s string) (*arming, error) {
	countdown := int64(1)
	if at := strings.LastIndex(s, "@"); at >= 0 {
		n, err := strconv.ParseInt(strings.TrimSpace(s[at+1:]), 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad countdown %q", s[at+1:])
		}
		countdown = n
		s = strings.TrimSpace(s[:at])
	}
	verb, args := s, ""
	if open := strings.Index(s, "("); open >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("bad action %q", s)
		}
		verb = s[:open]
		args = s[open+1 : len(s)-1]
	}
	a := &arming{}
	switch verb {
	case "error":
		msg := args
		if msg == "" {
			msg = "injected fault"
		}
		a.act = Action{Kind: KindError, Err: errors.New(msg)}
	case "exit":
		a.act = Action{Kind: KindExit}
		if args != "" {
			parts := strings.SplitN(args, ",", 2)
			code, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil {
				return nil, fmt.Errorf("bad exit code %q", parts[0])
			}
			a.act.Code = code
			if len(parts) == 2 {
				arg, err := strconv.Atoi(strings.TrimSpace(parts[1]))
				if err != nil {
					return nil, fmt.Errorf("bad exit arg %q", parts[1])
				}
				a.act.Arg = arg
			}
		}
	default:
		return nil, fmt.Errorf("unknown action %q", verb)
	}
	a.countdown.Store(countdown)
	return a, nil
}

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Arm(spec); err != nil {
			fmt.Fprintf(os.Stderr, "fault: %s: %v\n", EnvVar, err)
			os.Exit(2)
		}
	}
}
