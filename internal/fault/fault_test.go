package fault

import (
	"sync"
	"testing"
)

func TestDisabledPointIsInert(t *testing.T) {
	defer Reset()
	p := New("test/inert")
	if err := p.Hit(); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	if a := p.Fire(); a != nil {
		t.Fatalf("disabled point fired: %+v", a)
	}
}

func TestArmErrorWithCountdown(t *testing.T) {
	defer Reset()
	p := New("test/countdown")
	if err := Arm("test/countdown=error(boom)@3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("fired early at evaluation %d: %v", i+1, err)
		}
	}
	err := p.Hit()
	if err == nil || err.Error() != "boom" {
		t.Fatalf("want boom on third evaluation, got %v", err)
	}
	// One-shot: never fires again.
	for i := 0; i < 5; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("fired twice: %v", err)
		}
	}
	if got := Hits("test/countdown"); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

func TestPendingSpecAttachesToLaterRegistration(t *testing.T) {
	defer Reset()
	if err := Arm("test/late=error(late)"); err != nil {
		t.Fatal(err)
	}
	p := New("test/late")
	if err := p.Hit(); err == nil || err.Error() != "late" {
		t.Fatalf("pending arming did not attach: %v", err)
	}
}

func TestParseExitAction(t *testing.T) {
	defer Reset()
	a, err := parseAction("exit(7,42)@9")
	if err != nil {
		t.Fatal(err)
	}
	if a.act.Kind != KindExit || a.act.Code != 7 || a.act.Arg != 42 || a.countdown.Load() != 9 {
		t.Fatalf("parsed %+v countdown=%d", a.act, a.countdown.Load())
	}
	a, err = parseAction("exit")
	if err != nil {
		t.Fatal(err)
	}
	if a.act.Kind != KindExit || a.act.Code != 0 || a.countdown.Load() != 1 {
		t.Fatalf("parsed %+v", a.act)
	}
	for _, bad := range []string{"exit(x)", "error(@", "warp", "error@0", "error@x"} {
		if _, err := parseAction(bad); err == nil {
			t.Fatalf("parseAction(%q) accepted", bad)
		}
	}
}

func TestConcurrentFireIsOneShot(t *testing.T) {
	defer Reset()
	p := New("test/race")
	if err := Arm("test/race=error(once)@50"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.Fire() != nil {
					mu.Lock()
					count++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if count != 1 {
		t.Fatalf("fired %d times, want exactly 1", count)
	}
}

func TestResetClearsArmings(t *testing.T) {
	p := New("test/reset")
	if err := Arm("test/reset=error(x)"); err != nil {
		t.Fatal(err)
	}
	Reset()
	if err := p.Hit(); err != nil {
		t.Fatalf("armed after Reset: %v", err)
	}
	if got := TotalHits(); got != 0 {
		t.Fatalf("TotalHits after Reset = %d", got)
	}
}
