package version

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
)

// Policy selects a concrete version for a generic component relationship
// at assembly time (§6 lists exactly these three possibilities).
type Policy uint8

const (
	// SelectDefault is the bottom-up policy: the design object supplies
	// its default version.
	SelectDefault Policy = iota
	// SelectQuery is the top-down policy: a query associated with the
	// composite gives the required properties of the component.
	SelectQuery
	// SelectEnvironment defers to an environment table outside both the
	// composite and the component (cf. [DiLo85]).
	SelectEnvironment
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case SelectDefault:
		return "bottom-up (default version)"
	case SelectQuery:
		return "top-down (query)"
	case SelectEnvironment:
		return "environment"
	default:
		return "unknown"
	}
}

// GenericRef is a generic (version-unresolved) reference to a design
// object: "the component version is not fixed by the relationship" (§6).
type GenericRef struct {
	Design string
	Policy Policy
	// Query is the top-down selection predicate (SelectQuery only). It is
	// evaluated against each candidate version with Status, VersionNo and
	// Alternative available as pseudo-attributes. Among the matches the
	// *latest* (highest VersionNo) wins.
	Query expr.Expr
}

// Environment maps design objects to chosen versions — the paper's third
// selection mechanism, "guided by information not included in the object
// definition".
type Environment struct {
	Name   string
	choice map[string]domain.Surrogate
}

// NewEnvironment creates a named, empty environment.
func NewEnvironment(name string) *Environment {
	return &Environment{Name: name, choice: make(map[string]domain.Surrogate)}
}

// Choose fixes the version an environment selects for a design.
func (e *Environment) Choose(design string, obj domain.Surrogate) {
	e.choice[design] = obj
}

// Choice reports the environment's selection for a design.
func (e *Environment) Choice(design string) (domain.Surrogate, bool) {
	v, ok := e.choice[design]
	return v, ok
}

// Resolve selects the concrete version for a generic reference. env is
// consulted only under SelectEnvironment and may be nil otherwise.
func (m *Manager) Resolve(ref GenericRef, env *Environment) (domain.Surrogate, error) {
	switch ref.Policy {
	case SelectDefault:
		return m.Default(ref.Design)
	case SelectEnvironment:
		if env == nil {
			return 0, fmt.Errorf("%w: no environment given", ErrNotEnvironment)
		}
		v, ok := env.Choice(ref.Design)
		if !ok {
			return 0, fmt.Errorf("%w: design %q in environment %q", ErrNotEnvironment, ref.Design, env.Name)
		}
		if _, isV := m.InfoOf(v); !isV {
			return 0, fmt.Errorf("%w: environment %q chose %s", ErrNotAVersion, env.Name, v)
		}
		return v, nil
	case SelectQuery:
		if ref.Query == nil {
			return 0, fmt.Errorf("version: top-down selection needs a query")
		}
		vs, err := m.Versions(ref.Design)
		if err != nil {
			return 0, err
		}
		// Latest match wins: scan from the newest version backwards.
		for i := len(vs) - 1; i >= 0; i-- {
			info := vs[i]
			menv := &metaEnv{base: m.store.Env(info.Object), info: info}
			ok, err := expr.EvalBool(ref.Query, menv)
			if err != nil {
				return 0, fmt.Errorf("version: selection query on %s: %w", info.Object, err)
			}
			if ok {
				return info.Object, nil
			}
		}
		return 0, fmt.Errorf("%w: design %q, query %s", ErrNoMatch, ref.Design, ref.Query)
	default:
		return 0, fmt.Errorf("version: unknown policy %d", ref.Policy)
	}
}

// BindResolved resolves a generic reference and binds the inheritor to
// the selected version under the given inheritance relationship type —
// deferring version choice to assembly time, then materializing it as a
// normal binding.
func (m *Manager) BindResolved(relType string, inheritor domain.Surrogate, ref GenericRef, env *Environment) (domain.Surrogate, domain.Surrogate, error) {
	chosen, err := m.Resolve(ref, env)
	if err != nil {
		return 0, 0, err
	}
	bsur, err := m.store.Bind(relType, inheritor, chosen)
	if err != nil {
		return 0, 0, err
	}
	return chosen, bsur, nil
}
