// Package version implements the version management sketched in §6 of the
// paper: design objects as sets of versions organized in a derivation
// graph, alternatives (parallel development branches), classification of
// versions by correctness status, default versions, and *generic*
// component relationships whose concrete version is selected at assembly
// time by one of three policies — top-down (query), bottom-up (default
// version) or environment-guided, following [Wilk87] as the paper cites
// it.
package version

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/object"
)

// Status classifies a version "according to its degree of correctness"
// (§6). The order is the promotion order.
type Status string

// Version statuses, in promotion order.
const (
	StatusInWork   Status = "in_work"
	StatusStable   Status = "stable"
	StatusReleased Status = "released"
	StatusFrozen   Status = "frozen"
)

var statusRank = map[Status]int{
	StatusInWork:   0,
	StatusStable:   1,
	StatusReleased: 2,
	StatusFrozen:   3,
}

// Valid reports whether s is a declared status.
func (s Status) Valid() bool {
	_, ok := statusRank[s]
	return ok
}

// Errors returned by the manager; test with errors.Is.
var (
	ErrNoSuchDesign   = errors.New("version: no such design object")
	ErrDuplicate      = errors.New("version: already registered")
	ErrNotAVersion    = errors.New("version: object is not a registered version")
	ErrNoDefault      = errors.New("version: design object has no default version")
	ErrNoMatch        = errors.New("version: no version satisfies the selection")
	ErrFrozen         = errors.New("version: version is frozen")
	ErrBadTransition  = errors.New("version: invalid status transition")
	ErrNotEnvironment = errors.New("version: environment does not choose a version for this design")
)

// Info describes one registered version of a design object.
type Info struct {
	Object      domain.Surrogate
	Design      string
	No          int    // 1-based version number in registration order
	Alternative string // branch label, "" = main line
	Status      Status
	DerivedFrom []domain.Surrogate // predecessor versions (derivation DAG)
}

// Design is a design object: the abstraction (optionally an interface
// object) together with its set of versions.
type Design struct {
	Name string
	// Interface is the abstraction object versions must be bound to (0 =
	// unconstrained). With an interface set, AddVersion verifies the
	// candidate inherits from it, tying §6's versions to §4.2's
	// interfaces: "the implementations of an interface can be seen as the
	// versions of a design object which is represented by the interface".
	Interface domain.Surrogate

	versions   []*Info
	defaultVer domain.Surrogate
}

// Manager tracks design objects and versions over an object store.
type Manager struct {
	mu      sync.RWMutex
	store   *object.Store
	designs map[string]*Design
	byObj   map[domain.Surrogate]*Info
	// frozenN counts versions in StatusFrozen. Frozen is terminal, so the
	// count only grows; Frozen() uses it to answer "nothing is frozen"
	// without taking mu — that check sits on the store's hot write path.
	frozenN atomic.Int32
}

// NewManager creates an empty version manager for a store.
func NewManager(s *object.Store) *Manager {
	return &Manager{
		store:   s,
		designs: make(map[string]*Design),
		byObj:   make(map[domain.Surrogate]*Info),
	}
}

// DefineDesign registers a design object. iface may be 0.
func (m *Manager) DefineDesign(name string, iface domain.Surrogate) (*Design, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("version: design needs a name")
	}
	if _, dup := m.designs[name]; dup {
		return nil, fmt.Errorf("%w: design %q", ErrDuplicate, name)
	}
	if iface != 0 && !m.store.Exists(iface) {
		return nil, fmt.Errorf("%w: interface %s", object.ErrNoSuchObject, iface)
	}
	d := &Design{Name: name, Interface: iface}
	m.designs[name] = d
	return d, nil
}

// Design resolves a design object by name.
func (m *Manager) Design(name string) (*Design, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.designs[name]
	return d, ok
}

// DesignNames lists registered designs, sorted.
func (m *Manager) DesignNames() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.designs))
	for n := range m.designs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddVersion registers obj as a new version of the named design, derived
// from the given predecessors (which must be versions of the same
// design). The new version starts in StatusInWork on the given
// alternative ("" = main line).
func (m *Manager) AddVersion(design string, obj domain.Surrogate, derivedFrom []domain.Surrogate, alternative string) (*Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.designs[design]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDesign, design)
	}
	if !m.store.Exists(obj) {
		return nil, fmt.Errorf("%w: %s", object.ErrNoSuchObject, obj)
	}
	if _, dup := m.byObj[obj]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, obj)
	}
	if d.Interface != 0 && !m.inheritsFromLocked(obj, d.Interface) {
		return nil, fmt.Errorf("version: %s is not bound to the design's interface %s", obj, d.Interface)
	}
	for _, p := range derivedFrom {
		pi, ok := m.byObj[p]
		if !ok || pi.Design != design {
			return nil, fmt.Errorf("%w: predecessor %s", ErrNotAVersion, p)
		}
	}
	info := &Info{
		Object:      obj,
		Design:      design,
		No:          len(d.versions) + 1,
		Alternative: alternative,
		Status:      StatusInWork,
		DerivedFrom: append([]domain.Surrogate(nil), derivedFrom...),
	}
	d.versions = append(d.versions, info)
	m.byObj[obj] = info
	return info, nil
}

func (m *Manager) inheritsFromLocked(obj, iface domain.Surrogate) bool {
	for _, b := range m.store.BindingsOfInheritor(obj) {
		if b.Transmitter == iface {
			return true
		}
	}
	return false
}

// InfoOf returns the version record of an object.
func (m *Manager) InfoOf(obj domain.Surrogate) (*Info, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i, ok := m.byObj[obj]
	return i, ok
}

// Versions lists a design's versions in registration order.
func (m *Manager) Versions(design string) ([]*Info, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.designs[design]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDesign, design)
	}
	return append([]*Info(nil), d.versions...), nil
}

// Alternatives groups a design's versions by branch label.
func (m *Manager) Alternatives(design string) (map[string][]*Info, error) {
	vs, err := m.Versions(design)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]*Info)
	for _, v := range vs {
		out[v.Alternative] = append(out[v.Alternative], v)
	}
	return out, nil
}

// SetStatus changes a version's classification. Promotions follow the
// rank order; demotion is only allowed from stable back to in-work (a
// released or frozen version never loses its guarantee).
func (m *Manager) SetStatus(obj domain.Surrogate, st Status) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !st.Valid() {
		return fmt.Errorf("%w: unknown status %q", ErrBadTransition, st)
	}
	info, ok := m.byObj[obj]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotAVersion, obj)
	}
	from, to := statusRank[info.Status], statusRank[st]
	switch {
	case info.Status == StatusFrozen:
		return fmt.Errorf("%w: %s", ErrFrozen, obj)
	case to >= from: // promotion or same
	case info.Status == StatusStable && st == StatusInWork: // allowed demotion
	default:
		return fmt.Errorf("%w: %s -> %s", ErrBadTransition, info.Status, st)
	}
	info.Status = st
	if st == StatusFrozen {
		m.frozenN.Add(1)
	}
	return nil
}

// Frozen reports whether the object is a frozen version; the database
// facade refuses writes to frozen versions.
func (m *Manager) Frozen(obj domain.Surrogate) bool {
	if m.frozenN.Load() == 0 {
		return false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	i, ok := m.byObj[obj]
	return ok && i.Status == StatusFrozen
}

// SetDefault selects the design's default version (the bottom-up
// selection anchor: "Design objects supply a specific version as the
// default version", §6).
func (m *Manager) SetDefault(design string, obj domain.Surrogate) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.designs[design]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDesign, design)
	}
	info, ok := m.byObj[obj]
	if !ok || info.Design != design {
		return fmt.Errorf("%w: %s", ErrNotAVersion, obj)
	}
	d.defaultVer = obj
	return nil
}

// Default returns the design's default version.
func (m *Manager) Default(design string) (domain.Surrogate, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.designs[design]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchDesign, design)
	}
	if d.defaultVer == 0 {
		return 0, fmt.Errorf("%w: %q", ErrNoDefault, design)
	}
	return d.defaultVer, nil
}

// DerivationAncestors walks the derivation DAG upward from a version and
// returns all (transitive) predecessors, breadth-first.
func (m *Manager) DerivationAncestors(obj domain.Surrogate) ([]domain.Surrogate, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.byObj[obj]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotAVersion, obj)
	}
	var out []domain.Surrogate
	seen := map[domain.Surrogate]bool{obj: true}
	frontier := []domain.Surrogate{obj}
	for len(frontier) > 0 {
		var next []domain.Surrogate
		for _, cur := range frontier {
			for _, p := range m.byObj[cur].DerivedFrom {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	return out, nil
}

// Successors returns the direct derivation successors of a version.
func (m *Manager) Successors(obj domain.Surrogate) ([]domain.Surrogate, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	info, ok := m.byObj[obj]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotAVersion, obj)
	}
	d := m.designs[info.Design]
	var out []domain.Surrogate
	for _, v := range d.versions {
		for _, p := range v.DerivedFrom {
			if p == obj {
				out = append(out, v.Object)
				break
			}
		}
	}
	return out, nil
}

// metaEnv exposes version metadata (Status, VersionNo, Alternative) as
// pseudo-attributes over the version object's own environment, so
// top-down selection queries can mix data and metadata:
//
//	Status = released and Length <= 10
type metaEnv struct {
	base expr.Env
	info *Info
}

func (e *metaEnv) Lookup(name string) (domain.Value, bool) {
	switch name {
	case "Status":
		return domain.Sym(string(e.info.Status)), true
	case "VersionNo":
		return domain.Int(int64(e.info.No)), true
	case "Alternative":
		return domain.Str(e.info.Alternative), true
	}
	return e.base.Lookup(name)
}

func (e *metaEnv) Collection(name string) ([]domain.Value, bool) {
	return e.base.Collection(name)
}

func (e *metaEnv) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	return e.base.AttrOf(ref, attr)
}

func (e *metaEnv) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	return e.base.CollectionOf(ref, name)
}
