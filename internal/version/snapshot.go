package version

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
)

// DesignRecord is the portable form of one design object.
type DesignRecord struct {
	Name      string
	Interface domain.Surrogate
	Default   domain.Surrogate
}

// VersionRecord is the portable form of one version registration.
type VersionRecord struct {
	Object      domain.Surrogate
	Design      string
	No          int
	Alternative string
	Status      Status
	DerivedFrom []domain.Surrogate
}

// ManagerState is a complete logical snapshot of a version manager.
type ManagerState struct {
	Designs  []DesignRecord
	Versions []VersionRecord
}

// Export captures the manager's state, deterministic by design name and
// version number.
func (m *Manager) Export() *ManagerState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := &ManagerState{}
	names := make([]string, 0, len(m.designs))
	for n := range m.designs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := m.designs[n]
		st.Designs = append(st.Designs, DesignRecord{
			Name:      n,
			Interface: d.Interface,
			Default:   d.defaultVer,
		})
		for _, v := range d.versions {
			st.Versions = append(st.Versions, VersionRecord{
				Object:      v.Object,
				Design:      n,
				No:          v.No,
				Alternative: v.Alternative,
				Status:      v.Status,
				DerivedFrom: append([]domain.Surrogate(nil), v.DerivedFrom...),
			})
		}
	}
	return st
}

// Import rebuilds the state into an empty manager. Objects referenced by
// versions must already exist in the store.
func (m *Manager) Import(st *ManagerState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.designs) != 0 {
		return fmt.Errorf("version: Import needs an empty manager")
	}
	for _, d := range st.Designs {
		if _, dup := m.designs[d.Name]; dup {
			return fmt.Errorf("%w: design %q", ErrDuplicate, d.Name)
		}
		m.designs[d.Name] = &Design{Name: d.Name, Interface: d.Interface}
	}
	// Versions grouped per design in number order.
	vrecs := append([]VersionRecord(nil), st.Versions...)
	sort.Slice(vrecs, func(i, j int) bool {
		if vrecs[i].Design != vrecs[j].Design {
			return vrecs[i].Design < vrecs[j].Design
		}
		return vrecs[i].No < vrecs[j].No
	})
	for _, v := range vrecs {
		d, ok := m.designs[v.Design]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchDesign, v.Design)
		}
		if !m.store.Exists(v.Object) {
			return fmt.Errorf("version: snapshot version object %s missing", v.Object)
		}
		if _, dup := m.byObj[v.Object]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicate, v.Object)
		}
		if !v.Status.Valid() {
			return fmt.Errorf("%w: %q", ErrBadTransition, v.Status)
		}
		info := &Info{
			Object:      v.Object,
			Design:      v.Design,
			No:          v.No,
			Alternative: v.Alternative,
			Status:      v.Status,
			DerivedFrom: append([]domain.Surrogate(nil), v.DerivedFrom...),
		}
		d.versions = append(d.versions, info)
		m.byObj[v.Object] = info
		if info.Status == StatusFrozen {
			m.frozenN.Add(1)
		}
	}
	for _, d := range st.Designs {
		if d.Default == 0 {
			continue
		}
		info, ok := m.byObj[d.Default]
		if !ok || info.Design != d.Name {
			return fmt.Errorf("%w: default %s of %q", ErrNotAVersion, d.Default, d.Name)
		}
		m.designs[d.Name].defaultVer = d.Default
	}
	return nil
}
