package version

import (
	"testing"

	"cadcam/internal/domain"
)

func TestExportImportRoundTrip(t *testing.T) {
	r := buildVRig(t)
	if err := r.m.SetDefault("NAND", r.v2); err != nil {
		t.Fatal(err)
	}
	if err := r.m.SetStatus(r.v1, StatusReleased); err != nil {
		t.Fatal(err)
	}
	st := r.m.Export()
	if len(st.Designs) != 1 || len(st.Versions) != 3 {
		t.Fatalf("export: %d designs, %d versions", len(st.Designs), len(st.Versions))
	}

	m2 := NewManager(r.s)
	if err := m2.Import(st); err != nil {
		t.Fatal(err)
	}
	vs, err := m2.Versions("NAND")
	if err != nil || len(vs) != 3 {
		t.Fatalf("imported versions: %v, %v", vs, err)
	}
	if vs[0].Status != StatusReleased {
		t.Errorf("imported status = %s", vs[0].Status)
	}
	if vs[1].No != 2 || len(vs[1].DerivedFrom) != 1 || vs[1].DerivedFrom[0] != r.v1 {
		t.Errorf("imported derivation: %+v", vs[1])
	}
	d, err := m2.Default("NAND")
	if err != nil || d != r.v2 {
		t.Errorf("imported default = %v, %v", d, err)
	}
	if info, ok := m2.InfoOf(r.v3); !ok || info.Alternative != "lowpower" {
		t.Error("imported alternative lost")
	}
}

func TestImportValidation(t *testing.T) {
	r := buildVRig(t)
	st := r.m.Export()

	// Import into a non-empty manager.
	if err := r.m.Import(st); err == nil {
		t.Error("import into non-empty manager accepted")
	}
	// Version referencing a missing object.
	bad := *st
	bad.Versions = append([]VersionRecord(nil), st.Versions...)
	bad.Versions[0].Object = 9999
	m2 := NewManager(r.s)
	if err := m2.Import(&bad); err == nil {
		t.Error("missing version object accepted")
	}
	// Version of an undeclared design.
	bad2 := *st
	bad2.Versions = append([]VersionRecord(nil), st.Versions...)
	bad2.Versions[0].Design = "Ghost"
	if err := NewManager(r.s).Import(&bad2); err == nil {
		t.Error("undeclared design accepted")
	}
	// Duplicate version object.
	bad3 := *st
	bad3.Versions = append(append([]VersionRecord(nil), st.Versions...), st.Versions[0])
	if err := NewManager(r.s).Import(&bad3); err == nil {
		t.Error("duplicate version accepted")
	}
	// Invalid status.
	bad4 := *st
	bad4.Versions = append([]VersionRecord(nil), st.Versions...)
	bad4.Versions[0].Status = "garbage"
	if err := NewManager(r.s).Import(&bad4); err == nil {
		t.Error("invalid status accepted")
	}
	// Default pointing at a non-version.
	bad5 := *st
	bad5.Designs = append([]DesignRecord(nil), st.Designs...)
	bad5.Designs[0].Default = domain.Surrogate(9999)
	if err := NewManager(r.s).Import(&bad5); err == nil {
		t.Error("bad default accepted")
	}
	// Duplicate design.
	bad6 := *st
	bad6.Designs = append(append([]DesignRecord(nil), st.Designs...), st.Designs[0])
	if err := NewManager(r.s).Import(&bad6); err == nil {
		t.Error("duplicate design accepted")
	}
}
