package version

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/object"
	"cadcam/internal/paperschema"
)

// vrig: a NAND design object with an interface and three implementation
// versions (v1 -> v2 on main; v3 an alternative derived from v1).
type vrig struct {
	s          *object.Store
	m          *Manager
	rootI      domain.Surrogate
	iface      domain.Surrogate
	v1, v2, v3 domain.Surrogate
}

func buildVRig(t *testing.T) *vrig {
	t.Helper()
	s, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	r := &vrig{s: s, m: NewManager(s)}
	must := func(sur domain.Surrogate, err error) domain.Surrogate {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sur
	}
	r.rootI = must(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	r.iface = must(s.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, r.iface, r.rootI); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(r.iface, "Length", domain.Int(4)); err != nil {
		t.Fatal(err)
	}
	newImpl := func(tb int64) domain.Surrogate {
		impl := must(s.NewObject(paperschema.TypeGateImplementation, ""))
		if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, r.iface); err != nil {
			t.Fatal(err)
		}
		if err := s.SetAttr(impl, "TimeBehavior", domain.Int(tb)); err != nil {
			t.Fatal(err)
		}
		return impl
	}
	if _, err := r.m.DefineDesign("NAND", r.iface); err != nil {
		t.Fatal(err)
	}
	r.v1, r.v2, r.v3 = newImpl(12), newImpl(9), newImpl(15)
	if _, err := r.m.AddVersion("NAND", r.v1, nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.m.AddVersion("NAND", r.v2, []domain.Surrogate{r.v1}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.m.AddVersion("NAND", r.v3, []domain.Surrogate{r.v1}, "lowpower"); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDesignRegistration(t *testing.T) {
	r := buildVRig(t)
	if _, err := r.m.DefineDesign("NAND", 0); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate design: %v", err)
	}
	if _, err := r.m.DefineDesign("", 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := r.m.DefineDesign("X", 9999); err == nil {
		t.Error("missing interface accepted")
	}
	if d, ok := r.m.Design("NAND"); !ok || d.Interface != r.iface {
		t.Error("design lookup failed")
	}
	names := r.m.DesignNames()
	if len(names) != 1 || names[0] != "NAND" {
		t.Errorf("names = %v", names)
	}
}

func TestVersionRegistration(t *testing.T) {
	r := buildVRig(t)
	vs, err := r.m.Versions("NAND")
	if err != nil || len(vs) != 3 {
		t.Fatalf("versions = %v, %v", vs, err)
	}
	if vs[0].No != 1 || vs[1].No != 2 || vs[2].No != 3 {
		t.Error("version numbers should follow registration order")
	}
	if vs[2].Alternative != "lowpower" {
		t.Errorf("alternative = %q", vs[2].Alternative)
	}
	// Error paths.
	if _, err := r.m.AddVersion("Ghost", r.v1, nil, ""); !errors.Is(err, ErrNoSuchDesign) {
		t.Errorf("unknown design: %v", err)
	}
	if _, err := r.m.AddVersion("NAND", r.v1, nil, ""); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate version: %v", err)
	}
	if _, err := r.m.AddVersion("NAND", 9999, nil, ""); err == nil {
		t.Error("missing object accepted")
	}
	if _, err := r.m.AddVersion("NAND", r.rootI, nil, ""); err == nil {
		t.Error("object not bound to the interface accepted")
	}
	// Predecessor must be a version of the same design.
	impl, _ := r.s.NewObject(paperschema.TypeGateImplementation, "")
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, impl, r.iface); err != nil {
		t.Fatal(err)
	}
	if _, err := r.m.AddVersion("NAND", impl, []domain.Surrogate{9999}, ""); !errors.Is(err, ErrNotAVersion) {
		t.Errorf("bad predecessor: %v", err)
	}
	if _, err := r.m.Versions("Ghost"); !errors.Is(err, ErrNoSuchDesign) {
		t.Errorf("versions of unknown design: %v", err)
	}
}

func TestDerivationGraph(t *testing.T) {
	r := buildVRig(t)
	anc, err := r.m.DerivationAncestors(r.v2)
	if err != nil || len(anc) != 1 || anc[0] != r.v1 {
		t.Errorf("ancestors of v2 = %v, %v", anc, err)
	}
	succ, err := r.m.Successors(r.v1)
	if err != nil || len(succ) != 2 {
		t.Errorf("successors of v1 = %v, %v", succ, err)
	}
	if _, err := r.m.DerivationAncestors(9999); !errors.Is(err, ErrNotAVersion) {
		t.Errorf("ancestors of non-version: %v", err)
	}
	if _, err := r.m.Successors(9999); !errors.Is(err, ErrNotAVersion) {
		t.Errorf("successors of non-version: %v", err)
	}
	// Deeper chain: v4 derived from v2.
	impl, _ := r.s.NewObject(paperschema.TypeGateImplementation, "")
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, impl, r.iface); err != nil {
		t.Fatal(err)
	}
	if _, err := r.m.AddVersion("NAND", impl, []domain.Surrogate{r.v2}, ""); err != nil {
		t.Fatal(err)
	}
	anc, _ = r.m.DerivationAncestors(impl)
	if len(anc) != 2 {
		t.Errorf("transitive ancestors = %v", anc)
	}
}

func TestAlternatives(t *testing.T) {
	r := buildVRig(t)
	alts, err := r.m.Alternatives("NAND")
	if err != nil {
		t.Fatal(err)
	}
	if len(alts[""]) != 2 || len(alts["lowpower"]) != 1 {
		t.Errorf("alternatives = %v", alts)
	}
}

func TestStatusTransitions(t *testing.T) {
	r := buildVRig(t)
	// Promote along the rank order.
	for _, st := range []Status{StatusStable, StatusReleased, StatusFrozen} {
		if err := r.m.SetStatus(r.v1, st); err != nil {
			t.Fatalf("promote to %s: %v", st, err)
		}
	}
	// Frozen is terminal.
	if err := r.m.SetStatus(r.v1, StatusInWork); !errors.Is(err, ErrFrozen) {
		t.Errorf("thaw: %v", err)
	}
	if !r.m.Frozen(r.v1) {
		t.Error("v1 should be frozen")
	}
	if r.m.Frozen(r.v2) {
		t.Error("v2 should not be frozen")
	}
	// stable -> in_work is the one allowed demotion.
	if err := r.m.SetStatus(r.v2, StatusStable); err != nil {
		t.Fatal(err)
	}
	if err := r.m.SetStatus(r.v2, StatusInWork); err != nil {
		t.Errorf("stable->in_work: %v", err)
	}
	// released cannot demote.
	if err := r.m.SetStatus(r.v2, StatusReleased); err != nil {
		t.Fatal(err)
	}
	if err := r.m.SetStatus(r.v2, StatusInWork); !errors.Is(err, ErrBadTransition) {
		t.Errorf("released->in_work: %v", err)
	}
	if err := r.m.SetStatus(r.v2, "garbage"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("bad status: %v", err)
	}
	if err := r.m.SetStatus(9999, StatusStable); !errors.Is(err, ErrNotAVersion) {
		t.Errorf("non-version: %v", err)
	}
}

func TestBottomUpSelection(t *testing.T) {
	r := buildVRig(t)
	ref := GenericRef{Design: "NAND", Policy: SelectDefault}
	if _, err := r.m.Resolve(ref, nil); !errors.Is(err, ErrNoDefault) {
		t.Errorf("no default: %v", err)
	}
	if err := r.m.SetDefault("NAND", r.v2); err != nil {
		t.Fatal(err)
	}
	got, err := r.m.Resolve(ref, nil)
	if err != nil || got != r.v2 {
		t.Errorf("default selection = %v, %v", got, err)
	}
	if err := r.m.SetDefault("Ghost", r.v2); !errors.Is(err, ErrNoSuchDesign) {
		t.Errorf("default on unknown design: %v", err)
	}
	if err := r.m.SetDefault("NAND", 9999); !errors.Is(err, ErrNotAVersion) {
		t.Errorf("default to non-version: %v", err)
	}
}

func TestTopDownSelection(t *testing.T) {
	r := buildVRig(t)
	if err := r.m.SetStatus(r.v1, StatusReleased); err != nil {
		t.Fatal(err)
	}
	// Query mixing metadata and object data: released and fast enough.
	q := expr.MustParse("Status = released and TimeBehavior <= 12")
	got, err := r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectQuery, Query: q}, nil)
	if err != nil || got != r.v1 {
		t.Errorf("selection = %v, %v (want v1)", got, err)
	}
	// Releasing v2 makes it the latest match.
	if err := r.m.SetStatus(r.v2, StatusReleased); err != nil {
		t.Fatal(err)
	}
	got, err = r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectQuery, Query: q}, nil)
	if err != nil || got != r.v2 {
		t.Errorf("selection = %v, %v (want v2, the latest match)", got, err)
	}
	// Inherited data participates in the query (Length comes from the
	// interface).
	q2 := expr.MustParse("Length = 4 and Alternative = \"lowpower\"")
	got, err = r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectQuery, Query: q2}, nil)
	if err != nil || got != r.v3 {
		t.Errorf("selection = %v, %v (want v3)", got, err)
	}
	// No match.
	q3 := expr.MustParse("TimeBehavior < 0")
	if _, err := r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectQuery, Query: q3}, nil); !errors.Is(err, ErrNoMatch) {
		t.Errorf("no match: %v", err)
	}
	// Missing query.
	if _, err := r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectQuery}, nil); err == nil {
		t.Error("missing query accepted")
	}
	// Query evaluation errors surface.
	q4 := expr.MustParse("count(Nowhere) = 1")
	if _, err := r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectQuery, Query: q4}, nil); err == nil {
		t.Error("bad query should error")
	}
}

func TestEnvironmentSelection(t *testing.T) {
	r := buildVRig(t)
	env := NewEnvironment("simulation")
	env.Choose("NAND", r.v3)
	got, err := r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectEnvironment}, env)
	if err != nil || got != r.v3 {
		t.Errorf("environment selection = %v, %v", got, err)
	}
	// Unchosen design.
	if _, err := r.m.Resolve(GenericRef{Design: "OTHER", Policy: SelectEnvironment}, env); !errors.Is(err, ErrNotEnvironment) {
		t.Errorf("unchosen: %v", err)
	}
	// Nil environment.
	if _, err := r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectEnvironment}, nil); !errors.Is(err, ErrNotEnvironment) {
		t.Errorf("nil env: %v", err)
	}
	// Environment pointing at a non-version.
	env.Choose("NAND", 9999)
	if _, err := r.m.Resolve(GenericRef{Design: "NAND", Policy: SelectEnvironment}, env); !errors.Is(err, ErrNotAVersion) {
		t.Errorf("bad choice: %v", err)
	}
	if _, ok := env.Choice("NAND"); !ok {
		t.Error("choice should be recorded")
	}
}

func TestBindResolved(t *testing.T) {
	// Generic component relationship materialized at assembly time: a
	// TimedComposite binds to whichever implementation the policy picks.
	r := buildVRig(t)
	if err := r.m.SetDefault("NAND", r.v1); err != nil {
		t.Fatal(err)
	}
	user, _ := r.s.NewObject(paperschema.TypeTimedComposite, "")
	chosen, bsur, err := r.m.BindResolved(paperschema.RelSomeOfGate, user,
		GenericRef{Design: "NAND", Policy: SelectDefault}, nil)
	if err != nil || chosen != r.v1 {
		t.Fatalf("BindResolved = %v, %v, %v", chosen, bsur, err)
	}
	// The user now reads through the selected version.
	v, err := r.s.GetAttr(user, "TimeBehavior")
	if err != nil || !v.Equal(domain.Int(12)) {
		t.Errorf("TimeBehavior = %s, %v", v, err)
	}
	// A second resolution for the same rel type fails (already bound).
	if _, _, err := r.m.BindResolved(paperschema.RelSomeOfGate, user,
		GenericRef{Design: "NAND", Policy: SelectDefault}, nil); err == nil {
		t.Error("double bind accepted")
	}
	// Unresolvable ref propagates.
	user2, _ := r.s.NewObject(paperschema.TypeTimedComposite, "")
	if _, _, err := r.m.BindResolved(paperschema.RelSomeOfGate, user2,
		GenericRef{Design: "Ghost", Policy: SelectDefault}, nil); !errors.Is(err, ErrNoSuchDesign) {
		t.Errorf("unknown design: %v", err)
	}
}

func TestVersionedVersions(t *testing.T) {
	// §6: "versioned versions" — versions of interfaces which themselves
	// have versions (the implementations). Two design objects: one for
	// the interface level, one per interface version.
	s, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(s)
	must := func(sur domain.Surrogate, err error) domain.Surrogate {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sur
	}
	rootI := must(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	if _, err := m.DefineDesign("NAND-interface", rootI); err != nil {
		t.Fatal(err)
	}
	// Two interface versions bound to the super-interface.
	makeIface := func() domain.Surrogate {
		iface := must(s.NewObject(paperschema.TypeGateInterface, ""))
		if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
			t.Fatal(err)
		}
		return iface
	}
	if1, if2 := makeIface(), makeIface()
	if _, err := m.AddVersion("NAND-interface", if1, nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddVersion("NAND-interface", if2, []domain.Surrogate{if1}, ""); err != nil {
		t.Fatal(err)
	}
	// Each interface version is itself a design object whose versions are
	// implementations.
	if _, err := m.DefineDesign("NAND-v1-impls", if1); err != nil {
		t.Fatal(err)
	}
	impl := must(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, if1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddVersion("NAND-v1-impls", impl, nil, ""); err != nil {
		t.Fatal(err)
	}
	// The hierarchy reads through both levels.
	vs, _ := m.Versions("NAND-interface")
	if len(vs) != 2 {
		t.Errorf("interface versions = %d", len(vs))
	}
	vs, _ = m.Versions("NAND-v1-impls")
	if len(vs) != 1 {
		t.Errorf("implementation versions = %d", len(vs))
	}
	if info, ok := m.InfoOf(impl); !ok || info.Design != "NAND-v1-impls" {
		t.Error("InfoOf failed")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{SelectDefault, SelectQuery, SelectEnvironment, Policy(99)} {
		if p.String() == "" {
			t.Errorf("policy %d has empty string", p)
		}
	}
}
