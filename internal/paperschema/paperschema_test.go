package paperschema

import "testing"

func TestGatesCatalogValidates(t *testing.T) {
	c, err := Gates()
	if err != nil {
		t.Fatalf("Gates: %v", err)
	}
	for _, name := range []string{
		TypePin, TypeSimpleGate, TypeElementaryGate, TypeGateInterfaceI,
		TypeGateInterface, TypeGateImplementation, TypeSubGates, TypeTimedComposite,
	} {
		if _, ok := c.ObjectType(name); !ok {
			t.Errorf("object type %q missing", name)
		}
	}
	if _, ok := c.RelType(TypeWire); !ok {
		t.Error("WireType missing")
	}
	for _, name := range []string{RelAllOfGateInterfaceI, RelAllOfGateInterface, RelSomeOfGate} {
		if _, ok := c.InherRelType(name); !ok {
			t.Errorf("inher-rel-type %q missing", name)
		}
	}

	// GateImplementation's effective type: own Function/TimeBehavior,
	// inherited Length/Width/Pins (Pins originating two levels up).
	e, ok := c.Effective(TypeGateImplementation)
	if !ok {
		t.Fatal("effective type missing")
	}
	pins, ok := e.SubclassByName("Pins")
	if !ok || pins.Source != TypeGateInterfaceI {
		t.Errorf("Pins: ok=%v source=%q, want source %q", ok, pins.Source, TypeGateInterfaceI)
	}
	if a, ok := e.Attr("TimeBehavior"); !ok || a.Inherited() {
		t.Error("TimeBehavior should be an own attribute of the implementation")
	}

	// TimedComposite sees TimeBehavior through SomeOf_Gate.
	te, _ := c.Effective(TypeTimedComposite)
	tb, ok := te.Attr("TimeBehavior")
	if !ok || tb.Via != RelSomeOfGate || tb.Source != TypeGateImplementation {
		t.Errorf("TimeBehavior via=%q source=%q ok=%v", tb.Via, tb.Source, ok)
	}
	if _, ok := te.Attr("Function"); ok {
		t.Error("Function is not permeable through SomeOf_Gate")
	}
}

func TestSteelCatalogValidates(t *testing.T) {
	c, err := Steel()
	if err != nil {
		t.Fatalf("Steel: %v", err)
	}
	for _, name := range []string{
		TypeBolt, TypeNut, TypeBore, TypeGirderInterface, TypePlateInterface,
		TypeGirder, TypePlate, TypeStructure,
	} {
		if _, ok := c.ObjectType(name); !ok {
			t.Errorf("object type %q missing", name)
		}
	}
	// The bolt and nut inline types inside the screwing relationship.
	for _, name := range []string{"ScrewingType.Bolt", "ScrewingType.Nut"} {
		ot, ok := c.ObjectType(name)
		if !ok || !ot.Anonymous {
			t.Errorf("inline type %q missing or not anonymous", name)
		}
	}
	// Girder inherits the full interface.
	e, _ := c.Effective(TypeGirder)
	for _, attr := range []string{"Length", "Height", "Width"} {
		if a, ok := e.Attr(attr); !ok || !a.Inherited() {
			t.Errorf("Girder.%s should be inherited", attr)
		}
	}
	if b, ok := e.SubclassByName("Bores"); !ok || b.Source != TypeGirderInterface {
		t.Error("Girder.Bores should come from the interface")
	}
	if a, ok := e.Attr("Material"); !ok || a.Inherited() {
		t.Error("Girder.Material should be own")
	}
	// The structure's Girders subclass members inherit from the interface.
	se, _ := c.Effective(TypeStructure + ".Girders")
	if _, ok := se.Attr("Length"); !ok {
		t.Error("structure girder subobjects should inherit Length")
	}
	if mg := MustGates(); mg == nil {
		t.Error("MustGates returned nil")
	}
	if ms := MustSteel(); ms == nil {
		t.Error("MustSteel returned nil")
	}
}
