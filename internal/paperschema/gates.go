// Package paperschema constructs, in Go, the two schemas the paper
// develops in full: the chip-design schema of §3/§4 (simple gates,
// elementary gates, gate interfaces and implementations, interface
// hierarchies, permeability tailoring) and the steel-construction schema
// of §5 (plates, girders, bolts, nuts, screwings, weight-carrying
// structures).
//
// Tests, examples and the benchmark harness all build on these catalogs;
// the DDL front end parses the same definitions from testdata/paper.ddl
// and must produce equivalent catalogs (verified by a test).
//
// Two deliberate normalizations against the paper's pseudocode are
// documented in DESIGN.md:
//   - inheritance relationships shared by a named type and by component
//     subobjects declare `inheritor: object` (unrestricted), because the
//     paper binds the same relationship to both;
//   - the loose constraint scoping of ScrewingType ("s" leaking between
//     constraint lines) is written as one properly nested constraint.
package paperschema

import (
	"cadcam/internal/domain"
	"cadcam/internal/schema"
)

// Domain and type names used across the code base.
const (
	DomPoint = "Point"
	DomIO    = "IO"

	TypePin                = "PinType"
	TypeWire               = "WireType"
	TypeSimpleGate         = "SimpleGate"
	TypeElementaryGate     = "ElementaryGate"
	TypeGateInterfaceI     = "GateInterface_I"
	TypeGateInterface      = "GateInterface"
	TypeGateImplementation = "GateImplementation"
	TypeSubGates           = "GateImplementation.SubGates"

	RelAllOfGateInterfaceI = "AllOf_GateInterface_I"
	RelAllOfGateInterface  = "AllOf_GateInterface"
	RelSomeOfGate          = "SomeOf_Gate"

	TypeTimedComposite = "TimedComposite"
)

// Gates builds the chip-design catalog. The returned catalog is
// validated.
func Gates() (*schema.Catalog, error) {
	c := schema.NewCatalog()
	point := domain.Record(DomPoint,
		domain.Field{Name: "X", Dom: domain.Integer()},
		domain.Field{Name: "Y", Dom: domain.Integer()},
	)
	io := domain.Enum(DomIO, "IN", "OUT")
	gateFn := domain.Enum("GateFn", "AND", "OR", "NAND", "NOR")
	if err := c.AddDomain(point); err != nil {
		return nil, err
	}
	if err := c.AddDomain(io); err != nil {
		return nil, err
	}
	if err := c.AddDomain(gateFn); err != nil {
		return nil, err
	}

	// obj-type PinType (§3).
	if err := c.AddObjectType(&schema.ObjectType{
		Name: TypePin,
		Attributes: []schema.Attribute{
			{Name: "InOut", Domain: io},
			{Name: "PinLocation", Domain: point},
			{Name: "PinId", Domain: domain.Integer()},
		},
	}); err != nil {
		return nil, err
	}

	// rel-type WireType (§3).
	if err := c.AddRelType(&schema.RelType{
		Name: TypeWire,
		Participants: []schema.Participant{
			{Name: "Pin1", Type: TypePin},
			{Name: "Pin2", Type: TypePin},
		},
		Attributes: []schema.Attribute{
			{Name: "Corners", Domain: domain.ListOf(point)},
		},
	}); err != nil {
		return nil, err
	}

	// obj-type SimpleGate (§3): pins as a set-of-record *attribute*.
	if err := c.AddObjectType(&schema.ObjectType{
		Name: TypeSimpleGate,
		Attributes: []schema.Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Width", Domain: domain.Integer()},
			{Name: "Function", Domain: gateFn},
			{Name: "Pins", Domain: domain.SetOf(domain.Record("",
				domain.Field{Name: "PinId", Dom: domain.Integer()},
				domain.Field{Name: "InOut", Dom: io},
			))},
		},
		Constraints: []schema.Constraint{
			schema.MustConstraint("count (Pins) = 2 where Pins.InOut = IN"),
			schema.MustConstraint("count (Pins) = 1 where Pins.InOut = OUT"),
		},
	}); err != nil {
		return nil, err
	}

	// obj-type ElementaryGate (§3): pins as subobjects.
	if err := c.AddObjectType(&schema.ObjectType{
		Name: TypeElementaryGate,
		Attributes: []schema.Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Width", Domain: domain.Integer()},
			{Name: "Function", Domain: gateFn},
			{Name: "GatePosition", Domain: point},
		},
		Subclasses: []schema.Subclass{{Name: "Pins", ElemType: TypePin}},
		Constraints: []schema.Constraint{
			schema.MustConstraint("count (Pins) = 2 where Pins.InOut = IN"),
			schema.MustConstraint("count (Pins) = 1 where Pins.InOut = OUT"),
		},
	}); err != nil {
		return nil, err
	}

	// obj-type GateInterface_I (§4.2): root of the interface hierarchy.
	if err := c.AddObjectType(&schema.ObjectType{
		Name:       TypeGateInterfaceI,
		Subclasses: []schema.Subclass{{Name: "Pins", ElemType: TypePin}},
	}); err != nil {
		return nil, err
	}
	if err := c.AddInherRelType(&schema.InherRelType{
		Name:        RelAllOfGateInterfaceI,
		Transmitter: TypeGateInterfaceI,
		Inheriting:  []string{"Pins"},
	}); err != nil {
		return nil, err
	}

	// obj-type GateInterface (§4.2): interface version with expansion.
	if err := c.AddObjectType(&schema.ObjectType{
		Name:        TypeGateInterface,
		InheritorIn: []string{RelAllOfGateInterfaceI},
		Attributes: []schema.Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Width", Domain: domain.Integer()},
		},
	}); err != nil {
		return nil, err
	}
	if err := c.AddInherRelType(&schema.InherRelType{
		Name:        RelAllOfGateInterface,
		Transmitter: TypeGateInterface,
		Inheriting:  []string{"Length", "Width", "Pins"},
	}); err != nil {
		return nil, err
	}

	// obj-type GateImplementation (§4.2, composite form): inherits the
	// interface; SubGates subobjects are themselves inheritors bound to
	// *component* interfaces and add placement data.
	whereWires := "(Pin1 in Pins or Pin1 in SubGates.Pins) and (Pin2 in Pins or Pin2 in SubGates.Pins)"
	wc := schema.MustConstraint(whereWires)
	if err := c.AddObjectType(&schema.ObjectType{
		Name:        TypeGateImplementation,
		InheritorIn: []string{RelAllOfGateInterface},
		Attributes: []schema.Attribute{
			{Name: "Function", Domain: domain.MatrixOf(domain.Boolean())},
			{Name: "TimeBehavior", Domain: domain.Integer()},
		},
		Subclasses: []schema.Subclass{
			{Name: "SubGates", Inline: &schema.ObjectType{
				InheritorIn: []string{RelAllOfGateInterface},
				Attributes:  []schema.Attribute{{Name: "GateLocation", Domain: point}},
			}},
		},
		SubRels: []schema.SubRel{
			{Name: "Wires", RelType: TypeWire, Where: &wc},
		},
	}); err != nil {
		return nil, err
	}

	// inher-rel-type SomeOf_Gate (§4 end): tailored permeability exporting
	// TimeBehavior past the interface.
	if err := c.AddInherRelType(&schema.InherRelType{
		Name:        RelSomeOfGate,
		Transmitter: TypeGateImplementation,
		Inheriting:  []string{"Length", "Width", "TimeBehavior", "Pins"},
	}); err != nil {
		return nil, err
	}
	// A consumer type using the tailored view (e.g. a timing simulator's
	// placement of a gate).
	if err := c.AddObjectType(&schema.ObjectType{
		Name:        TypeTimedComposite,
		InheritorIn: []string{RelSomeOfGate},
		Attributes: []schema.Attribute{
			{Name: "SimSlot", Domain: domain.Integer()},
		},
	}); err != nil {
		return nil, err
	}

	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustGates is Gates for callers with static schemas.
func MustGates() *schema.Catalog {
	c, err := Gates()
	if err != nil {
		panic(err)
	}
	return c
}
