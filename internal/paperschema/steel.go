package paperschema

import (
	"cadcam/internal/domain"
	"cadcam/internal/schema"
)

// Steel-construction type names (§5).
const (
	DomArea = "AreaDom"

	TypeBolt            = "BoltType"
	TypeNut             = "NutType"
	TypeBore            = "BoreType"
	TypeGirderInterface = "GirderInterface"
	TypePlateInterface  = "PlateInterface"
	TypeGirder          = "Girder"
	TypePlate           = "Plate"
	TypeScrewing        = "ScrewingType"
	TypeStructure       = "WeightCarrying_Structure"

	RelAllOfGirderIf = "AllOf_GirderIf"
	RelAllOfPlateIf  = "AllOf_PlateIf"
	RelAllOfBoltType = "AllOf_BoltType"
	RelAllOfNutType  = "AllOf_NutType"
)

// Steel builds the steel-construction catalog of §5. The returned catalog
// is validated.
func Steel() (*schema.Catalog, error) {
	c := schema.NewCatalog()
	area := domain.Record(DomArea,
		domain.Field{Name: "Length", Dom: domain.Integer()},
		domain.Field{Name: "Width", Dom: domain.Integer()},
	)
	material := domain.Enum("Material", "wood", "metal")
	pointless := domain.Record(DomPoint,
		domain.Field{Name: "X", Dom: domain.Integer()},
		domain.Field{Name: "Y", Dom: domain.Integer()},
	)
	if err := c.AddDomain(area); err != nil {
		return nil, err
	}
	if err := c.AddDomain(material); err != nil {
		return nil, err
	}
	if err := c.AddDomain(pointless); err != nil {
		return nil, err
	}

	// Basic part types.
	for _, t := range []*schema.ObjectType{
		{Name: TypeBolt, Attributes: []schema.Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Diameter", Domain: domain.Integer()},
		}},
		{Name: TypeNut, Attributes: []schema.Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Diameter", Domain: domain.Integer()},
		}},
		{Name: TypeBore, Attributes: []schema.Attribute{
			{Name: "Diameter", Domain: domain.Integer()},
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Position", Domain: pointless},
		}},
	} {
		if err := c.AddObjectType(t); err != nil {
			return nil, err
		}
	}

	// 1. Interface definitions.
	if err := c.AddObjectType(&schema.ObjectType{
		Name: TypeGirderInterface,
		Attributes: []schema.Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Height", Domain: domain.Integer()},
			{Name: "Width", Domain: domain.Integer()},
		},
		Subclasses: []schema.Subclass{{Name: "Bores", ElemType: TypeBore}},
		Constraints: []schema.Constraint{
			schema.MustConstraint("Length < 100*Height*Width"),
		},
	}); err != nil {
		return nil, err
	}
	if err := c.AddObjectType(&schema.ObjectType{
		Name: TypePlateInterface,
		Attributes: []schema.Attribute{
			{Name: "Thickness", Domain: domain.Integer()},
			{Name: "Area", Domain: area},
		},
		Subclasses: []schema.Subclass{{Name: "Bores", ElemType: TypeBore}},
	}); err != nil {
		return nil, err
	}

	// 2. Inheritance relationships. (Unrestricted inheritor: the same
	// relationship binds the Girder/Plate types and the component
	// subobjects of WeightCarrying_Structure — see package comment.)
	for _, r := range []*schema.InherRelType{
		{Name: RelAllOfGirderIf, Transmitter: TypeGirderInterface,
			Inheriting: []string{"Length", "Height", "Width", "Bores"}},
		{Name: RelAllOfPlateIf, Transmitter: TypePlateInterface,
			Inheriting: []string{"Thickness", "Area", "Bores"}},
		{Name: RelAllOfBoltType, Transmitter: TypeBolt,
			Inheriting: []string{"Length", "Diameter"}},
		{Name: RelAllOfNutType, Transmitter: TypeNut,
			Inheriting: []string{"Length", "Diameter"}},
	} {
		if err := c.AddInherRelType(r); err != nil {
			return nil, err
		}
	}

	// 3. Girder and Plate.
	if err := c.AddObjectType(&schema.ObjectType{
		Name:        TypeGirder,
		InheritorIn: []string{RelAllOfGirderIf},
		Attributes:  []schema.Attribute{{Name: "Material", Domain: material}},
	}); err != nil {
		return nil, err
	}
	if err := c.AddObjectType(&schema.ObjectType{
		Name:        TypePlate,
		InheritorIn: []string{RelAllOfPlateIf},
		Attributes:  []schema.Attribute{{Name: "Material", Domain: material}},
	}); err != nil {
		return nil, err
	}

	// rel-type ScrewingType: the assembly relationship. It relates a set
	// of bores and *contains* its bolt and nut as subobjects inheriting
	// from the part catalog (§5).
	if err := c.AddRelType(&schema.RelType{
		Name: TypeScrewing,
		Participants: []schema.Participant{
			{Name: "Bores", Type: TypeBore, SetOf: true},
		},
		Attributes: []schema.Attribute{
			{Name: "Strength", Domain: domain.Integer()},
		},
		Subclasses: []schema.Subclass{
			{Name: "Bolt", Inline: &schema.ObjectType{InheritorIn: []string{RelAllOfBoltType}}},
			{Name: "Nut", Inline: &schema.ObjectType{InheritorIn: []string{RelAllOfNutType}}},
		},
		Constraints: []schema.Constraint{
			schema.MustConstraint("#s in Bolt = 1"),
			schema.MustConstraint("#n in Nut = 1"),
			schema.MustConstraint(
				"for (s in Bolt, n in Nut): s.Diameter = n.Diameter and " +
					"(for b in Bores: s.Diameter <= b.Diameter) and " +
					"s.Length = n.Length + sum(Bores.Length)"),
		},
	}); err != nil {
		return nil, err
	}

	// obj-type WeightCarrying_Structure.
	whereScrew := schema.MustConstraint("for x in Bores: x in Girders.Bores or x in Plates.Bores")
	if err := c.AddObjectType(&schema.ObjectType{
		Name: TypeStructure,
		Attributes: []schema.Attribute{
			{Name: "Designer", Domain: domain.String_()},
			{Name: "Description", Domain: domain.String_()},
		},
		Subclasses: []schema.Subclass{
			{Name: "Girders", Inline: &schema.ObjectType{InheritorIn: []string{RelAllOfGirderIf}}},
			{Name: "Plates", Inline: &schema.ObjectType{InheritorIn: []string{RelAllOfPlateIf}}},
		},
		SubRels: []schema.SubRel{
			{Name: "Screwings", RelType: TypeScrewing, Where: &whereScrew},
		},
	}); err != nil {
		return nil, err
	}

	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustSteel is Steel for callers with static schemas.
func MustSteel() *schema.Catalog {
	c, err := Steel()
	if err != nil {
		panic(err)
	}
	return c
}
