package wal

import (
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/version"
)

func fresh(t *testing.T) (*object.Store, *version.Manager) {
	t.Helper()
	s, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	return s, version.NewManager(s)
}

func TestOpEncodeDecode(t *testing.T) {
	ops := []*oplog.Op{
		{Kind: oplog.KindDefineClass, Name: "Interfaces", Name2: paperschema.TypeGateInterface},
		{Kind: oplog.KindNewObject, Name: paperschema.TypePin, Name2: ""},
		{Kind: oplog.KindSetAttr, Sur: 7, Name: "Length", Value: domain.Int(4)},
		{Kind: oplog.KindSetAttr, Sur: 7, Name: "Length", Value: domain.NullValue},
		{Kind: oplog.KindRelate, Name: paperschema.TypeWire, Parts: map[string]domain.Value{
			"Pin1": domain.Ref(1), "Pin2": domain.Ref(2),
		}},
		{Kind: oplog.KindBind, Sur: 3, Sur2: 4, Name: paperschema.RelAllOfGateInterface},
		{Kind: oplog.KindAddVersion, Sur: 5, Name: "NAND", Name2: "alt", Surs: []domain.Surrogate{1, 2}},
		{Kind: oplog.KindDeletePolicy, Num: 1},
	}
	for _, op := range ops {
		b := op.Encode()
		got, err := oplog.Decode(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", op, err)
		}
		if got.Kind != op.Kind || got.Sur != op.Sur || got.Sur2 != op.Sur2 ||
			got.Name != op.Name || got.Name2 != op.Name2 || got.Num != op.Num {
			t.Errorf("round trip mismatch: %+v vs %+v", got, op)
		}
		if op.Value != nil && !got.Value.Equal(op.Value) {
			t.Errorf("value mismatch: %s vs %s", got.Value, op.Value)
		}
		if len(got.Parts) != len(op.Parts) || len(got.Surs) != len(op.Surs) {
			t.Errorf("composite mismatch: %+v vs %+v", got, op)
		}
	}
	if _, err := oplog.Decode([]byte{}); err == nil {
		t.Error("empty op should fail to decode")
	}
}

func TestApplyJournalReproducesState(t *testing.T) {
	// Execute a scripted sequence against one store while journaling the
	// ops, then replay the journal on a fresh store: surrogates, values
	// and bindings must coincide.
	journal := []*oplog.Op{
		{Kind: oplog.KindDefineClass, Name: "Roots", Name2: paperschema.TypeGateInterfaceI},
		{Kind: oplog.KindNewObject, Name: paperschema.TypeGateInterfaceI, Name2: "Roots"}, // @1
		{Kind: oplog.KindNewSubobject, Sur: 1, Name: "Pins"},                              // @2
		{Kind: oplog.KindSetAttr, Sur: 2, Name: "InOut", Value: domain.Sym("IN")},
		{Kind: oplog.KindNewObject, Name: paperschema.TypeGateInterface},                  // @3
		{Kind: oplog.KindBind, Sur: 3, Sur2: 1, Name: paperschema.RelAllOfGateInterfaceI}, // @4 (binding obj)
		{Kind: oplog.KindSetAttr, Sur: 3, Name: "Length", Value: domain.Int(6)},
		{Kind: oplog.KindNewObject, Name: paperschema.TypeGateImplementation},            // @5
		{Kind: oplog.KindBind, Sur: 5, Sur2: 3, Name: paperschema.RelAllOfGateInterface}, // @6
		{Kind: oplog.KindSetAttr, Sur: 5, Name: "TimeBehavior", Value: domain.Int(11)},
		{Kind: oplog.KindDefineDesign, Name: "NAND", Sur: 3},
		{Kind: oplog.KindAddVersion, Name: "NAND", Sur: 5},
		{Kind: oplog.KindSetStatus, Sur: 5, Name: string(version.StatusReleased)},
		{Kind: oplog.KindSetDefault, Name: "NAND", Sur: 5},
		{Kind: oplog.KindAcknowledge, Sur: 5, Name: paperschema.RelAllOfGateInterface},
	}
	apply := func(t *testing.T) (*object.Store, *version.Manager) {
		s, vm := fresh(t)
		for i, op := range journal {
			// Encode/decode in the loop so replay exercises the codec.
			dec, err := oplog.Decode(op.Encode())
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if err := Apply(dec, s, vm, false); err != nil {
				t.Fatalf("op %d (%d): %v", i, op.Kind, err)
			}
		}
		return s, vm
	}
	s1, vm1 := apply(t)
	s2, vm2 := apply(t)

	if s1.Len() != s2.Len() {
		t.Fatalf("object counts differ: %d vs %d", s1.Len(), s2.Len())
	}
	// Inherited read works identically.
	v1, err1 := s1.GetAttr(5, "Length")
	v2, err2 := s2.GetAttr(5, "Length")
	if err1 != nil || err2 != nil || !v1.Equal(v2) || !v1.Equal(domain.Int(6)) {
		t.Errorf("inherited reads: %v/%v %v/%v", v1, err1, v2, err2)
	}
	// Version state coincides.
	d1, _ := vm1.Default("NAND")
	d2, _ := vm2.Default("NAND")
	if d1 != d2 || d1 != 5 {
		t.Errorf("defaults: %v vs %v", d1, d2)
	}
	if !vm1.Frozen(5) == vm2.Frozen(5) && vm1.Frozen(5) {
		t.Error("frozen state differs")
	}
}

func TestApplyUnknownOp(t *testing.T) {
	s, vm := fresh(t)
	if err := Apply(&oplog.Op{Kind: oplog.Kind(99)}, s, vm, false); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	// Build a rich state, snapshot it, restore into fresh store+manager,
	// compare exports.
	s, vm := fresh(t)
	must := func(sur domain.Surrogate, err error) domain.Surrogate {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sur
	}
	if err := s.DefineClass("Roots", paperschema.TypeGateInterfaceI); err != nil {
		t.Fatal(err)
	}
	rootI := must(s.NewObject(paperschema.TypeGateInterfaceI, "Roots"))
	pin := must(s.NewSubobject(rootI, "Pins"))
	if err := s.SetAttr(pin, "InOut", domain.Sym("IN")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(pin, "PinLocation", domain.NewRec("X", domain.Int(1), "Y", domain.Int(2))); err != nil {
		t.Fatal(err)
	}
	iface := must(s.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(iface, "Length", domain.Int(4)); err != nil {
		t.Fatal(err)
	}
	impl := must(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	pin2 := must(s.NewSubobject(rootI, "Pins"))
	w := must(s.Relate(paperschema.TypeWire, object.Participants{
		"Pin1": domain.Ref(pin), "Pin2": domain.Ref(pin2),
	}))
	if err := s.SetAttr(w, "Corners", domain.NewList(domain.NewRec("X", domain.Int(0), "Y", domain.Int(0)))); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.DefineDesign("NAND", iface); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.AddVersion("NAND", impl, nil, "main"); err != nil {
		t.Fatal(err)
	}
	if err := vm.SetDefault("NAND", impl); err != nil {
		t.Fatal(err)
	}
	if err := vm.SetStatus(impl, version.StatusStable); err != nil {
		t.Fatal(err)
	}
	// One permeable update so binding counters are non-zero.
	if err := s.SetAttr(iface, "Width", domain.Int(2)); err != nil {
		t.Fatal(err)
	}

	blob := EncodeSnapshot(s.Export(), vm.Export())
	s2, vm2 := fresh(t)
	if err := DecodeSnapshot(blob, s2, vm2); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	// Deep compare via re-export.
	blob2 := EncodeSnapshot(s2.Export(), vm2.Export())
	if len(blob) != len(blob2) {
		t.Fatalf("re-exported snapshot differs in size: %d vs %d", len(blob), len(blob2))
	}
	for i := range blob {
		if blob[i] != blob2[i] {
			t.Fatalf("re-exported snapshot differs at byte %d", i)
		}
	}
	// Behaviour carries over: inherited read, class, binding bookkeeping,
	// version default.
	if v, err := s2.GetAttr(impl, "Length"); err != nil || !v.Equal(domain.Int(4)) {
		t.Errorf("restored inherited read: %v, %v", v, err)
	}
	members, err := s2.Class("Roots")
	if err != nil || len(members) != 1 || members[0] != rootI {
		t.Errorf("restored class: %v, %v", members, err)
	}
	b, ok := s2.BindingOf(impl, paperschema.RelAllOfGateInterface)
	if !ok || !b.NeedsAdaptation() {
		t.Error("restored binding should still need adaptation")
	}
	if d, err := vm2.Default("NAND"); err != nil || d != impl {
		t.Errorf("restored default: %v, %v", d, err)
	}
	// Post-restore mutations keep working and surrogate allocation
	// continues without collision.
	fresh1, err := s2.NewObject(paperschema.TypePin, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Exists(fresh1) {
		t.Errorf("surrogate %v collides with pre-snapshot allocation", fresh1)
	}
}

func TestSnapshotDecodeErrors(t *testing.T) {
	s, vm := fresh(t)
	if err := DecodeSnapshot([]byte{1, 2, 3}, s, vm); err == nil {
		t.Error("garbage snapshot accepted")
	}
	blob := EncodeSnapshot(s.Export(), vm.Export())
	blob[0] ^= 0xFF
	s2, vm2 := fresh(t)
	if err := DecodeSnapshot(blob, s2, vm2); err == nil {
		t.Error("bad magic accepted")
	}
}
