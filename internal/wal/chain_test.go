package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cadcam/internal/storage"
)

// buildChain writes a three-epoch journal chain with a known batch
// layout and returns the per-batch record payloads in append order.
func buildChain(t *testing.T, dir string) [][][]byte {
	t.Helper()
	rec := func(epoch, batch, i int) []byte {
		return []byte(fmt.Sprintf("e%d-b%d-r%d", epoch, batch, i))
	}
	var batches [][][]byte
	for epoch := 0; epoch < 3; epoch++ {
		log, records, err := storage.OpenLog(filepath.Join(dir, WALFilename(uint64(epoch))))
		if err != nil {
			t.Fatal(err)
		}
		if len(records) != 0 {
			t.Fatalf("fresh epoch %d log has %d records", epoch, len(records))
		}
		// Mixed batch sizes: single-record legacy frames, multi-record
		// batch frames, and a record that begins with the batch marker
		// (must still round-trip as one record).
		sizes := []int{1, 3, 1, 7, 2}
		for b, n := range sizes {
			var batch [][]byte
			for i := 0; i < n; i++ {
				batch = append(batch, rec(epoch, b, i))
			}
			if n == 1 && b == 2 {
				batch = [][]byte{append([]byte{storage.BatchMarker}, rec(epoch, b, 0)...)}
			}
			if err := log.AppendBatch(batch, true); err != nil {
				t.Fatal(err)
			}
			batches = append(batches, batch)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return batches
}

// TestChainConsumersAgreeOnBatchBoundaries is the funnel regression
// test: recovery (OpenChain, truncating) and the replication shipper
// (TailFrames, read-only) must see the identical batch boundaries and
// records for the same chain — including a torn frame at the tail,
// which both must ignore.
func TestChainConsumersAgreeOnBatchBoundaries(t *testing.T) {
	dir := t.TempDir()
	batches := buildChain(t, dir)

	// Tear the live epoch's tail: a frame header promising more bytes
	// than the file holds, exactly what a crash mid-append leaves.
	livePath := filepath.Join(dir, WALFilename(2))
	f, err := os.OpenFile(livePath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Shipper view first (read-only): it must not modify the files.
	frames, pos, err := TailFrames(dir, ChainPos{})
	if err != nil {
		t.Fatalf("TailFrames: %v", err)
	}
	tornSize, _ := os.Stat(livePath)
	if tornSize.Size() <= pos.Offset {
		t.Fatalf("TailFrames truncated or consumed the torn tail: size %d, pos %d", tornSize.Size(), pos.Offset)
	}

	if len(frames) != len(batches) {
		t.Fatalf("shipper saw %d batches, wrote %d", len(frames), len(batches))
	}
	for i, fr := range frames {
		if len(fr.Records) != len(batches[i]) {
			t.Fatalf("batch %d: shipper boundary holds %d records, append wrote %d", i, len(fr.Records), len(batches[i]))
		}
		for j, r := range fr.Records {
			if !bytes.Equal(r, batches[i][j]) {
				t.Fatalf("batch %d record %d: shipper %q, append wrote %q", i, j, r, batches[i][j])
			}
		}
	}
	if pos.Epoch != 2 {
		t.Fatalf("shipper position epoch %d, want 2", pos.Epoch)
	}

	// Recovery view second (truncating): same records, and its torn-tail
	// truncation must land exactly on the shipper's final boundary.
	records, live, log, err := OpenChain(dir, 0)
	if err != nil {
		t.Fatalf("OpenChain: %v", err)
	}
	defer log.Close()
	if live != 2 {
		t.Fatalf("OpenChain live epoch %d, want 2", live)
	}
	var want [][]byte
	for _, b := range batches {
		want = append(want, b...)
	}
	if len(records) != len(want) {
		t.Fatalf("recovery replayed %d records, shipper boundaries hold %d", len(records), len(want))
	}
	for i := range want {
		if !bytes.Equal(records[i], want[i]) {
			t.Fatalf("record %d: recovery %q, shipper %q", i, records[i], want[i])
		}
	}
	truncated, _ := os.Stat(livePath)
	if truncated.Size() != pos.Offset {
		t.Fatalf("recovery truncated to %d bytes, shipper boundary at %d", truncated.Size(), pos.Offset)
	}
}

// TestTailFramesIncremental re-reads the chain from a saved position and
// must see exactly the frames appended since.
func TestTailFramesIncremental(t *testing.T) {
	dir := t.TempDir()
	log, _, err := storage.OpenLog(filepath.Join(dir, WALFilename(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.AppendBatch([][]byte{[]byte("a"), []byte("b")}, true); err != nil {
		t.Fatal(err)
	}
	frames, pos, err := TailFrames(dir, ChainPos{})
	if err != nil || len(frames) != 1 {
		t.Fatalf("first tail: %v frames, err %v", len(frames), err)
	}
	if err := log.AppendBatch([][]byte{[]byte("c")}, true); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	frames, pos2, err := TailFrames(dir, pos)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || len(frames[0].Records) != 1 || string(frames[0].Records[0]) != "c" {
		t.Fatalf("incremental tail saw %v", frames)
	}
	if again, _, err := TailFrames(dir, pos2); err != nil || len(again) != 0 {
		t.Fatalf("idle tail: %d frames, err %v", len(again), err)
	}
}

// TestTailFramesGap: a position below a garbage-collected epoch must
// report ErrChainGap, the trigger for a checkpoint resync.
func TestTailFramesGap(t *testing.T) {
	dir := t.TempDir()
	log, _, err := storage.OpenLog(filepath.Join(dir, WALFilename(5)))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if _, _, err := TailFrames(dir, ChainPos{Epoch: 3}); err == nil {
		t.Fatal("gap not detected")
	} else if !errorsIsChainGap(err) {
		t.Fatalf("want ErrChainGap, got %v", err)
	}
	// Reading at an offset into a vanished file is also a gap.
	if _, _, err := TailFrames(dir, ChainPos{Epoch: 4, Offset: 32}); err == nil || !errorsIsChainGap(err) {
		t.Fatalf("offset gap: %v", err)
	}
}

func errorsIsChainGap(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == ErrChainGap {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
