package wal

import (
	"bytes"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/version"
)

// FuzzWALDecode drives the operation decoder with arbitrary bytes —
// exactly what replay faces if a journal frame survives its CRC but
// carries a damaged payload. Decoding must error or succeed, never
// panic; and an accepted record must re-encode canonically (decode ∘
// encode is idempotent after the first round trip).
func FuzzWALDecode(f *testing.F) {
	seedOps := []*oplog.Op{
		{Kind: oplog.KindNewObject, Name: "GateInterface", Out: 7},
		{Kind: oplog.KindSetAttr, Sur: 3, Name: "Length", Value: domain.Int(42), Seq: 9},
		{Kind: oplog.KindSetAttr, Sur: 3, Name: "Pt", Value: domain.NewRec("X", domain.Int(1), "Y", domain.Int(2))},
		{Kind: oplog.KindSetAttr, Sur: 3, Name: "L", Value: domain.NewList(domain.Str("a"), domain.Sym("IN"))},
		{Kind: oplog.KindSetAttr, Sur: 3, Name: "S", Value: domain.NewSet(domain.Bool(true), domain.Rl(2.5))},
		{Kind: oplog.KindSetAttr, Sur: 3, Name: "M", Value: domain.NewMatrix(2, 2,
			domain.Int(1), domain.Int(2), domain.Int(3), domain.Int(4))},
		{Kind: oplog.KindRelate, Name: "WireType",
			Parts: map[string]domain.Value{"Pin1": domain.Ref(4), "Pin2": domain.Ref(5)}, Out: 11, Seq: 3},
		{Kind: oplog.KindBind, Name: "AllOf_GateInterface", Sur: 2, Sur2: 6, Out: 12, Seq: 4},
		{Kind: oplog.KindAcknowledge, Name: "SomeOf_Gate", Sur: 2, Num: 77},
		{Kind: oplog.KindDelete, Sur: 9, Seq: 13},
	}
	for _, op := range seedOps {
		f.Add(op.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		op, err := oplog.Decode(b)
		if err != nil {
			return
		}
		b2 := op.Encode()
		op2, err := oplog.Decode(b2)
		if err != nil {
			t.Fatalf("re-decode of accepted op failed: %v\ninput:  %x\nencode: %x", err, b, b2)
		}
		if b3 := op2.Encode(); !bytes.Equal(b2, b3) {
			t.Fatalf("encoding not canonical after one round trip:\nfirst:  %x\nsecond: %x", b2, b3)
		}
	})
}

// FuzzSnapshotDecode drives the snapshot decoder the same way: recovery
// reads the snapshot blob before any journal record, so a damaged blob
// must be rejected with an error, never a panic or runaway allocation.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSnapshot(&object.StoreState{NextSur: 5, Seq: 3}, &version.ManagerState{}))
	f.Add(EncodeSnapshot(&object.StoreState{
		Classes: []object.ClassRecord{{Name: "C0", ElemType: "GateInterface_I"}},
		Objects: []object.ObjectRecord{{
			Sur: 1, TypeName: "GateInterface_I", OwnerClass: "C0", ModSeq: 2,
			Attrs: map[string]domain.Value{"Length": domain.Int(4)},
		}},
		Bindings: []object.BindingRecord{{
			Sur: 2, RelType: "AllOf_GateInterface", Transmitter: 1, Inheritor: 3,
			Attrs: map[string]domain.Value{
				"TransmitterUpdates": domain.Int(1),
				"LastUpdateSeq":      domain.Int(2),
				"AcknowledgedSeq":    domain.Int(0),
			},
		}},
		NextSur: 4, Seq: 9,
	}, &version.ManagerState{}))
	f.Fuzz(func(t *testing.T, b []byte) {
		st, vs, err := DecodeSnapshotState(b)
		if err != nil {
			return
		}
		// An accepted blob must re-encode to an accepted blob (not
		// necessarily byte-identical: map order inside attrs is fixed by
		// the codec, but a fuzzed blob may contain non-canonical varints).
		b2 := EncodeSnapshot(st, vs)
		if _, _, err := DecodeSnapshotState(b2); err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
	})
}

// FuzzManifestDecode drives the checkpoint-manifest decoder with
// arbitrary bytes — what recovery faces when a manifest file's CRC frame
// survives but the payload is damaged. Decoding must error or succeed,
// never panic or over-allocate; an accepted manifest must re-encode to
// an accepted manifest.
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add(EncodeManifest(&Manifest{
		Epoch:     3,
		SegEpochs: []uint64{3, 1, 3, 2},
		Base:      &object.StoreState{NextSur: 9, Seq: 17},
		Versions:  &version.ManagerState{},
	}))
	f.Add(EncodeManifest(&Manifest{
		Epoch:     1,
		SegEpochs: []uint64{1},
		Base: &object.StoreState{
			Classes: []object.ClassRecord{{Name: "C0", ElemType: "GateInterface_I"}},
			NextSur: 2, Seq: 5,
		},
		Versions: &version.ManagerState{
			Designs: []version.DesignRecord{{Name: "D", Interface: 1, Default: 0}},
		},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		b2 := EncodeManifest(m)
		m2, err := DecodeManifest(b2)
		if err != nil {
			t.Fatalf("re-decode of accepted manifest failed: %v", err)
		}
		if len(m2.SegEpochs) != len(m.SegEpochs) || m2.Epoch != m.Epoch {
			t.Fatalf("manifest round trip changed shape: %+v vs %+v", m, m2)
		}
	})
}

// FuzzSegmentDecode drives the segment decoder the same way, pinned to
// partition 0 (the decoder rejects any payload claiming another
// partition, which the fuzzer will also exercise).
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSegment(0, nil, nil))
	f.Add(EncodeSegment(0,
		[]object.ObjectRecord{{
			Sur: 16, TypeName: "GateInterface_I", ModSeq: 2,
			Attrs: map[string]domain.Value{"Length": domain.Int(4)},
		}},
		[]object.BindingRecord{{
			Sur: 32, RelType: "AllOf_GateInterface", Transmitter: 16, Inheritor: 48,
		}}))
	f.Fuzz(func(t *testing.T, b []byte) {
		objs, binds, err := DecodeSegment(b, 0)
		if err != nil {
			return
		}
		b2 := EncodeSegment(0, objs, binds)
		if _, _, err := DecodeSegment(b2, 0); err != nil {
			t.Fatalf("re-decode of accepted segment failed: %v", err)
		}
	})
}
