package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"cadcam/internal/object"
	"cadcam/internal/storage"
	"cadcam/internal/version"
)

// DirState is everything a reader derives from a database directory: the
// newest decodable checkpoint state (nil Store for a fresh directory)
// and the journal chain on top of it. Recovery, journal scanning and the
// replication shipper's resync path all load directories through here,
// so they can never disagree about which checkpoint is newest or what
// the chain replays.
type DirState struct {
	// StateEpoch is the checkpoint epoch the state was loaded at (0 when
	// the directory has no checkpoint). FromManifest distinguishes the
	// incremental manifest+segments format from a legacy snapshot.
	StateEpoch   uint64
	FromManifest bool
	SegEpochs    []uint64
	Store        *object.StoreState
	Versions     *version.ManagerState
	Segments     int
	DecodeNs     int64

	// Records is the concatenated journal chain: every record of epochs
	// StateEpoch..LiveEpoch in append order. A checkpoint rotates the
	// journal *before* committing its manifest, so a crashed or failed
	// checkpoint leaves several consecutive live logs; all of them
	// replay. Log is the opened newest journal (the caller owns it) when
	// the directory was loaded for writing, nil in read-only mode.
	Records   [][]byte
	LiveEpoch uint64
	Log       *storage.Log
}

// LoadDirState locates the newest valid checkpoint in dir, decodes it
// (segments concurrently, up to `workers` goroutines; <= 0 means
// GOMAXPROCS), and reads the journal chain on top. A corrupt or
// half-written checkpoint falls back to the next older one.
//
// openLive selects the consumer: recovery (true) opens the newest
// journal for appending and truncates torn tails in place, exactly as a
// restart must; a replication shipper (false) scans the chain strictly
// read-only — a live primary owns those files — and leaves Log nil.
func LoadDirState(dir string, workers int, openLive bool) (*DirState, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var manifests, snaps []uint64
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "manifest-%d.mf", &n); err == nil {
			manifests = append(manifests, n)
		} else if _, err := fmt.Sscanf(e.Name(), "snap-%d.snap", &n); err == nil {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(manifests, func(i, j int) bool { return manifests[i] > manifests[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	ds := &DirState{}
	t0 := time.Now()
	for _, e := range manifests {
		blob, err := storage.ReadSnapshot(filepath.Join(dir, ManifestFilename(e)))
		if err != nil || blob == nil {
			continue // corrupt or vanished manifest: fall back
		}
		m, err := DecodeManifest(blob)
		if err != nil || m.Epoch != e {
			continue
		}
		st, err := decodeSegments(dir, m, workers)
		if err != nil {
			continue // a referenced segment is missing or corrupt
		}
		ds.StateEpoch, ds.FromManifest = e, true
		ds.SegEpochs = m.SegEpochs
		ds.Store, ds.Versions = st, m.Versions
		ds.Segments = len(m.SegEpochs)
		break
	}
	if ds.Store == nil {
		// No usable manifest: fall back to the newest legacy snapshot
		// (pre-incremental directories), then to an empty epoch-0 state.
		for _, e := range snaps {
			blob, err := storage.ReadSnapshot(filepath.Join(dir, SnapshotFilename(e)))
			if err != nil || blob == nil {
				continue
			}
			st, vs, err := DecodeSnapshotState(blob)
			if err != nil {
				continue
			}
			ds.StateEpoch = e
			ds.Store, ds.Versions = st, vs
			break
		}
	}
	ds.DecodeNs = time.Since(t0).Nanoseconds()

	if openLive {
		records, live, log, err := OpenChain(dir, ds.StateEpoch)
		if err != nil {
			return nil, err
		}
		ds.Records, ds.LiveEpoch, ds.Log = records, live, log
		return ds, nil
	}
	frames, pos, err := TailFrames(dir, ChainPos{Epoch: ds.StateEpoch})
	if err != nil {
		return nil, err
	}
	for _, fr := range frames {
		ds.Records = append(ds.Records, fr.Records...)
	}
	ds.LiveEpoch = pos.Epoch
	return ds, nil
}

// decodeSegments reads and decodes every segment a manifest references,
// concurrently, and merges them with the manifest's base state. Any
// missing or corrupt segment fails the whole checkpoint (the caller
// falls back to an older one).
func decodeSegments(dir string, m *Manifest, workers int) (*object.StoreState, error) {
	parts := len(m.SegEpochs)
	st := &object.StoreState{
		Classes: m.Base.Classes,
		Indexes: m.Base.Indexes,
		NextSur: m.Base.NextSur,
		Seq:     m.Base.Seq,
	}
	if parts == 0 {
		return st, nil
	}
	objs := make([][]object.ObjectRecord, parts)
	binds := make([][]object.BindingRecord, parts)
	errs := make([]error, parts)
	if workers > parts {
		workers = parts
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := w; p < parts; p += workers {
				blob, err := storage.ReadSnapshot(filepath.Join(dir, SegmentFilename(m.SegEpochs[p], p)))
				if err != nil {
					errs[p] = err
					continue
				}
				if blob == nil {
					errs[p] = fmt.Errorf("wal: segment %d of epoch %d missing", p, m.SegEpochs[p])
					continue
				}
				objs[p], binds[p], errs[p] = DecodeSegment(blob, p)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for p := 0; p < parts; p++ {
		st.Objects = append(st.Objects, objs[p]...)
		st.Bindings = append(st.Bindings, binds[p]...)
	}
	return st, nil
}
