package wal

import (
	"fmt"

	"cadcam/internal/codec"
	"cadcam/internal/object"
	"cadcam/internal/version"
)

// Incremental checkpoint format. A checkpoint is no longer one snapshot
// blob but a *manifest* plus one *segment* per store shard:
//
//   - a segment holds the object and binding records owned by one shard
//     partition, exactly as the full snapshot would encode them;
//   - the manifest holds everything else — classes, the global counters,
//     the version-manager state — plus, per partition, the checkpoint
//     epoch whose segment file currently describes that partition.
//
// Shards that did not change since their last encoded segment keep the
// old segment file; the manifest simply keeps pointing at it. The
// manifest file is the commit point: it is written atomically (CRC frame,
// temp file, rename) after every referenced segment is durable, so a
// crash anywhere in a checkpoint leaves either the previous manifest or
// the new one fully backed by segments.
// Manifest version 2 adds the secondary-index definitions after the class
// records; version-1 manifests (no index section) still decode.
const (
	manifestMagic   = uint64(0xCADC0FFE)
	manifestVersion = uint64(2)
	segMagic        = uint64(0xCAD5E600)
	segVersion      = uint64(1)
)

// Manifest describes one committed incremental checkpoint.
type Manifest struct {
	// Epoch is the checkpoint epoch: the journal epoch whose log starts
	// empty at this state. Recovery replays wal files Epoch, Epoch+1, ...
	// (a failed checkpoint rotates the journal without committing a
	// manifest, leaving a chain).
	Epoch uint64
	// SegEpochs[p] is the epoch whose segment file holds partition p's
	// records; len(SegEpochs) is the partition count the store was sharded
	// into when the checkpoint ran.
	SegEpochs []uint64
	// Base is the non-partitioned store state: classes and counters, no
	// object or binding records.
	Base *object.StoreState
	// Versions is the full version-manager state (small; never split).
	Versions *version.ManagerState
}

// EncodeManifest serializes a manifest payload (the caller wraps it in a
// CRC frame via storage.WriteSnapshot).
func EncodeManifest(m *Manifest) []byte {
	var e codec.Buf
	e.Uvarint(manifestMagic)
	e.Uvarint(manifestVersion)
	e.Uvarint(m.Epoch)
	e.Uvarint(uint64(len(m.SegEpochs)))
	for _, se := range m.SegEpochs {
		e.Uvarint(se)
	}
	encodeClassRecords(&e, m.Base.Classes)
	encodeIndexRecords(&e, m.Base.Indexes)
	e.Uvarint(m.Base.NextSur)
	e.Uvarint(m.Base.Seq)
	encodeVersionState(&e, m.Versions)
	return e.Bytes()
}

// maxManifestParts bounds the partition count a decoder will accept, so a
// corrupt or fuzzed count byte cannot demand an absurd allocation.
const maxManifestParts = 1 << 16

// DecodeManifest parses a manifest payload.
func DecodeManifest(b []byte) (*Manifest, error) {
	r := codec.NewReader(b)
	if r.Uvarint() != manifestMagic {
		return nil, fmt.Errorf("wal: bad manifest magic")
	}
	v := r.Uvarint()
	if v < 1 || v > manifestVersion {
		return nil, fmt.Errorf("wal: unsupported manifest version %d", v)
	}
	m := &Manifest{Epoch: r.Uvarint(), Base: &object.StoreState{}}
	parts := r.Uvarint()
	if parts > maxManifestParts {
		return nil, fmt.Errorf("wal: implausible manifest partition count %d", parts)
	}
	for i := uint64(0); i < parts && r.Err() == nil; i++ {
		m.SegEpochs = append(m.SegEpochs, r.Uvarint())
	}
	m.Base.Classes = decodeClassRecords(r)
	if v >= 2 {
		m.Base.Indexes = decodeIndexRecords(r)
	}
	m.Base.NextSur = r.Uvarint()
	m.Base.Seq = r.Uvarint()
	m.Versions = decodeVersionState(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(m.SegEpochs) != int(parts) {
		return nil, fmt.Errorf("wal: truncated manifest partition table")
	}
	return m, nil
}

// EncodeSegment serializes one partition's records.
func EncodeSegment(part int, objs []object.ObjectRecord, binds []object.BindingRecord) []byte {
	var e codec.Buf
	e.Uvarint(segMagic)
	e.Uvarint(segVersion)
	e.Uvarint(uint64(part))
	e.Uvarint(uint64(len(objs)))
	for i := range objs {
		encodeObjectRecord(&e, &objs[i])
	}
	e.Uvarint(uint64(len(binds)))
	for i := range binds {
		encodeBindingRecord(&e, &binds[i])
	}
	return e.Bytes()
}

// DecodeSegment parses one partition's records and verifies the payload
// really belongs to partition `part` (a renamed or cross-copied segment
// file must not import silently).
func DecodeSegment(b []byte, part int) ([]object.ObjectRecord, []object.BindingRecord, error) {
	r := codec.NewReader(b)
	if r.Uvarint() != segMagic {
		return nil, nil, fmt.Errorf("wal: bad segment magic")
	}
	if v := r.Uvarint(); v != segVersion {
		return nil, nil, fmt.Errorf("wal: unsupported segment version %d", v)
	}
	if p := r.Uvarint(); r.Err() == nil && p != uint64(part) {
		return nil, nil, fmt.Errorf("wal: segment belongs to partition %d, want %d", p, part)
	}
	var objs []object.ObjectRecord
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		objs = append(objs, decodeObjectRecord(r))
	}
	var binds []object.BindingRecord
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		binds = append(binds, decodeBindingRecord(r))
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	// Same normalization as the full-snapshot decoder: explicit nulls in
	// attribute maps are deleted keys.
	for _, o := range objs {
		normalizeNulls(o.Attrs)
		normalizeNulls(o.Participants)
	}
	return objs, binds, nil
}
