package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"cadcam/internal/storage"
)

// SnapshotFilename, WALFilename, ManifestFilename and SegmentFilename
// name the epoch files a persistent database keeps in its directory.
// They live here (rather than in the database facade) because everything
// that walks a directory's journal chain — recovery, journal scanning,
// and the replication shipper — shares this package. Snapshot files are
// the legacy single-blob checkpoint format, still read but no longer
// written.
func SnapshotFilename(epoch uint64) string { return fmt.Sprintf("snap-%08d.snap", epoch) }

// WALFilename returns the journal file name of an epoch.
func WALFilename(epoch uint64) string { return fmt.Sprintf("wal-%08d.log", epoch) }

// ManifestFilename returns the checkpoint manifest file name of an epoch.
func ManifestFilename(epoch uint64) string { return fmt.Sprintf("manifest-%08d.mf", epoch) }

// SegmentFilename returns the file name of shard partition `part`'s
// segment encoded at an epoch.
func SegmentFilename(epoch uint64, part int) string {
	return fmt.Sprintf("seg-%08d-p%03d.seg", epoch, part)
}

// ChainPos addresses a frame boundary in a directory's journal chain: a
// journal epoch and a byte offset within that epoch's log. The zero
// value is the start of epoch 0 — the beginning of history for a
// directory that has never checkpointed.
type ChainPos struct {
	Epoch  uint64
	Offset int64
}

// ChainFrame is one sealed group-commit frame read from the chain,
// tagged with the epoch it came from. End is the reader's next offset
// within that epoch.
type ChainFrame struct {
	Epoch       uint64
	Offset, End int64
	Records     [][]byte
}

// ErrChainGap reports that the journal chain no longer contains the
// requested position: the file was garbage-collected after a checkpoint
// (or the directory was rebuilt), so a tailer must resynchronize from
// the newest checkpoint instead of reading forward.
var ErrChainGap = errors.New("wal: journal chain gap")

// TailFrames reads every sealed frame of the journal chain at or after
// pos, following the chain across epochs, and returns the frames plus
// the position a later call should resume from. It never writes: torn
// tails are left in place (the primary may still be completing them) and
// simply not returned. Safe to call concurrently with a live primary
// appending to and checkpointing the same directory.
//
// The epoch-advance rule relies on the checkpoint protocol: a checkpoint
// flushes the group-commit pipeline into epoch e *before* creating
// wal-(e+1), so once the next epoch's file exists, epoch e is complete.
// The existence check runs before the scan — if wal-(e+1) appears only
// after the scan started, this call stays on epoch e and the next call
// advances.
func TailFrames(dir string, pos ChainPos) ([]ChainFrame, ChainPos, error) {
	var out []ChainFrame
	for {
		_, nerr := os.Stat(filepath.Join(dir, WALFilename(pos.Epoch+1)))
		nextExists := nerr == nil
		frames, end, err := storage.ReadFrames(filepath.Join(dir, WALFilename(pos.Epoch)), pos.Offset)
		if errors.Is(err, os.ErrNotExist) {
			if pos.Offset > 0 || chainAhead(dir, pos.Epoch) {
				return out, pos, fmt.Errorf("%w: %s missing", ErrChainGap, WALFilename(pos.Epoch))
			}
			return out, pos, nil // nothing journaled yet
		}
		if err != nil {
			return out, pos, err
		}
		for _, fr := range frames {
			out = append(out, ChainFrame{Epoch: pos.Epoch, Offset: fr.Offset, End: fr.End, Records: fr.Records})
		}
		pos.Offset = end
		if !nextExists {
			return out, pos, nil
		}
		pos = ChainPos{Epoch: pos.Epoch + 1}
	}
}

// chainAhead reports whether the directory holds any journal of an epoch
// newer than `epoch` — the signature of a chain that moved past a
// garbage-collected position.
func chainAhead(dir string, epoch uint64) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &n); err == nil && n > epoch {
			return true
		}
	}
	return false
}

// OpenChain opens the journal chain rooted at epoch `start` for
// recovery: wal-(start), wal-(start+1), ... while the next file exists,
// truncating each torn tail in place, and returns the concatenated
// records in append order, the newest (live) epoch, and its opened log —
// which the caller owns and hands to the group committer. This is the
// writing twin of TailFrames: both derive their batch boundaries from
// storage.ScanFrames, so recovery and the replication shipper always
// agree on what the chain contains.
func OpenChain(dir string, start uint64) ([][]byte, uint64, *storage.Log, error) {
	log, records, err := storage.OpenLog(filepath.Join(dir, WALFilename(start)))
	if err != nil {
		return nil, 0, nil, err
	}
	live := start
	for {
		next := filepath.Join(dir, WALFilename(live+1))
		if _, serr := os.Stat(next); serr != nil {
			break
		}
		nlog, nrecs, err := storage.OpenLog(next)
		if err != nil {
			log.Close()
			return nil, 0, nil, err
		}
		if err := log.Close(); err != nil {
			nlog.Close()
			return nil, 0, nil, err
		}
		log = nlog
		live++
		records = append(records, nrecs...)
	}
	return records, live, log, nil
}
