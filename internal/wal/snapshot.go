package wal

import (
	"fmt"

	"cadcam/internal/codec"
	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/version"
)

// Snapshot format: magic, format version, store state, version state.
// Version 2 adds the secondary-index definitions after the class records;
// the decoder still accepts version-1 blobs (no index section).
const (
	snapMagic   = uint64(0xCADCA55E)
	snapVersion = uint64(2)
)

// EncodeSnapshot serializes the full logical state of the store and
// version manager from their exported states. Callers that need the
// snapshot to be atomic with a log rotation export under
// object.Store.WithExclusive.
func EncodeSnapshot(st *object.StoreState, vs *version.ManagerState) []byte {
	var e codec.Buf
	e.Uvarint(snapMagic)
	e.Uvarint(snapVersion)

	encodeClassRecords(&e, st.Classes)
	encodeIndexRecords(&e, st.Indexes)
	e.Uvarint(uint64(len(st.Objects)))
	for i := range st.Objects {
		encodeObjectRecord(&e, &st.Objects[i])
	}
	e.Uvarint(uint64(len(st.Bindings)))
	for i := range st.Bindings {
		encodeBindingRecord(&e, &st.Bindings[i])
	}
	e.Uvarint(st.NextSur)
	e.Uvarint(st.Seq)

	encodeVersionState(&e, vs)
	return e.Bytes()
}

// DecodeSnapshot rebuilds the state into an empty store and version
// manager.
func DecodeSnapshot(b []byte, s *object.Store, vm *version.Manager) error {
	st, vs, err := DecodeSnapshotState(b)
	if err != nil {
		return err
	}
	if err := s.Import(st); err != nil {
		return err
	}
	return vm.Import(vs)
}

// DecodeSnapshotState decodes a snapshot blob into its raw state records
// without importing them anywhere, so verification tooling can feed the
// same bytes to an independent model of the store.
func DecodeSnapshotState(b []byte) (*object.StoreState, *version.ManagerState, error) {
	r := codec.NewReader(b)
	if r.Uvarint() != snapMagic {
		return nil, nil, fmt.Errorf("wal: bad snapshot magic")
	}
	v := r.Uvarint()
	if v < 1 || v > snapVersion {
		return nil, nil, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	st := &object.StoreState{}
	st.Classes = decodeClassRecords(r)
	if v >= 2 {
		st.Indexes = decodeIndexRecords(r)
	}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		st.Objects = append(st.Objects, decodeObjectRecord(r))
	}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		st.Bindings = append(st.Bindings, decodeBindingRecord(r))
	}
	st.NextSur = r.Uvarint()
	st.Seq = r.Uvarint()

	vs := decodeVersionState(r)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	// Attrs maps in records may contain explicit nulls; normalize.
	for _, o := range st.Objects {
		normalizeNulls(o.Attrs)
		normalizeNulls(o.Participants)
	}
	return st, vs, nil
}

func normalizeNulls(m map[string]domain.Value) {
	for k, v := range m {
		if domain.IsNull(v) {
			delete(m, k)
		}
	}
}
