package wal

import (
	"fmt"

	"cadcam/internal/codec"
	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/version"
)

// Snapshot format: magic, format version, store state, version state.
const (
	snapMagic   = uint64(0xCADCA55E)
	snapVersion = uint64(1)
)

// EncodeSnapshot serializes the full logical state of the store and
// version manager from their exported states. Callers that need the
// snapshot to be atomic with a log rotation export under
// object.Store.WithExclusive.
func EncodeSnapshot(st *object.StoreState, vs *version.ManagerState) []byte {
	var e codec.Buf
	e.Uvarint(snapMagic)
	e.Uvarint(snapVersion)

	e.Uvarint(uint64(len(st.Classes)))
	for _, c := range st.Classes {
		e.Str(c.Name)
		e.Str(c.ElemType)
	}
	e.Uvarint(uint64(len(st.Objects)))
	for _, o := range st.Objects {
		e.Sur(o.Sur)
		e.Str(o.TypeName)
		e.Bool(o.IsRel)
		e.Sur(o.Parent)
		e.Str(o.ParentSub)
		e.Str(o.OwnerClass)
		e.Uvarint(o.ModSeq)
		e.ValueMap(o.Attrs)
		e.ValueMap(o.Participants)
	}
	e.Uvarint(uint64(len(st.Bindings)))
	for _, b := range st.Bindings {
		e.Sur(b.Sur)
		e.Str(b.RelType)
		e.Sur(b.Transmitter)
		e.Sur(b.Inheritor)
		e.ValueMap(b.Attrs)
	}
	e.Uvarint(st.NextSur)
	e.Uvarint(st.Seq)

	e.Uvarint(uint64(len(vs.Designs)))
	for _, d := range vs.Designs {
		e.Str(d.Name)
		e.Sur(d.Interface)
		e.Sur(d.Default)
	}
	e.Uvarint(uint64(len(vs.Versions)))
	for _, v := range vs.Versions {
		e.Sur(v.Object)
		e.Str(v.Design)
		e.Uvarint(uint64(v.No))
		e.Str(v.Alternative)
		e.Str(string(v.Status))
		e.Surs(v.DerivedFrom)
	}
	return e.Bytes()
}

// DecodeSnapshot rebuilds the state into an empty store and version
// manager.
func DecodeSnapshot(b []byte, s *object.Store, vm *version.Manager) error {
	st, vs, err := DecodeSnapshotState(b)
	if err != nil {
		return err
	}
	if err := s.Import(st); err != nil {
		return err
	}
	return vm.Import(vs)
}

// DecodeSnapshotState decodes a snapshot blob into its raw state records
// without importing them anywhere, so verification tooling can feed the
// same bytes to an independent model of the store.
func DecodeSnapshotState(b []byte) (*object.StoreState, *version.ManagerState, error) {
	r := codec.NewReader(b)
	if r.Uvarint() != snapMagic {
		return nil, nil, fmt.Errorf("wal: bad snapshot magic")
	}
	if v := r.Uvarint(); v != snapVersion {
		return nil, nil, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	st := &object.StoreState{}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		st.Classes = append(st.Classes, object.ClassRecord{Name: r.Str(), ElemType: r.Str()})
	}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		st.Objects = append(st.Objects, object.ObjectRecord{
			Sur:          r.Sur(),
			TypeName:     r.Str(),
			IsRel:        r.Bool(),
			Parent:       r.Sur(),
			ParentSub:    r.Str(),
			OwnerClass:   r.Str(),
			ModSeq:       r.Uvarint(),
			Attrs:        r.ValueMap(),
			Participants: r.ValueMap(),
		})
	}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		st.Bindings = append(st.Bindings, object.BindingRecord{
			Sur:         r.Sur(),
			RelType:     r.Str(),
			Transmitter: r.Sur(),
			Inheritor:   r.Sur(),
			Attrs:       r.ValueMap(),
		})
	}
	st.NextSur = r.Uvarint()
	st.Seq = r.Uvarint()

	vs := &version.ManagerState{}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		vs.Designs = append(vs.Designs, version.DesignRecord{
			Name:      r.Str(),
			Interface: r.Sur(),
			Default:   r.Sur(),
		})
	}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		vs.Versions = append(vs.Versions, version.VersionRecord{
			Object:      r.Sur(),
			Design:      r.Str(),
			No:          int(r.Uvarint()),
			Alternative: r.Str(),
			Status:      version.Status(r.Str()),
			DerivedFrom: r.Surs(),
		})
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	// Attrs maps in records may contain explicit nulls; normalize.
	for _, o := range st.Objects {
		normalizeNulls(o.Attrs)
		normalizeNulls(o.Participants)
	}
	return st, vs, nil
}

func normalizeNulls(m map[string]domain.Value) {
	for k, v := range m {
		if domain.IsNull(v) {
			delete(m, k)
		}
	}
}
