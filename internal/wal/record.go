package wal

import (
	"cadcam/internal/codec"
	"cadcam/internal/object"
	"cadcam/internal/version"
)

// Shared record codecs: the full snapshot, the checkpoint manifest and
// the per-shard segments all serialize the same logical records, so the
// field order lives here exactly once. Changing any of these functions
// changes the byte format of every snapshot artifact — including the
// canonical encoding the crash-recovery oracle byte-compares.

func encodeObjectRecord(e *codec.Buf, o *object.ObjectRecord) {
	e.Sur(o.Sur)
	e.Str(o.TypeName)
	e.Bool(o.IsRel)
	e.Sur(o.Parent)
	e.Str(o.ParentSub)
	e.Str(o.OwnerClass)
	e.Uvarint(o.ModSeq)
	e.ValueMap(o.Attrs)
	e.ValueMap(o.Participants)
}

func decodeObjectRecord(r *codec.Reader) object.ObjectRecord {
	return object.ObjectRecord{
		Sur:          r.Sur(),
		TypeName:     r.Str(),
		IsRel:        r.Bool(),
		Parent:       r.Sur(),
		ParentSub:    r.Str(),
		OwnerClass:   r.Str(),
		ModSeq:       r.Uvarint(),
		Attrs:        r.ValueMap(),
		Participants: r.ValueMap(),
	}
}

func encodeBindingRecord(e *codec.Buf, b *object.BindingRecord) {
	e.Sur(b.Sur)
	e.Str(b.RelType)
	e.Sur(b.Transmitter)
	e.Sur(b.Inheritor)
	e.ValueMap(b.Attrs)
}

func decodeBindingRecord(r *codec.Reader) object.BindingRecord {
	return object.BindingRecord{
		Sur:         r.Sur(),
		RelType:     r.Str(),
		Transmitter: r.Sur(),
		Inheritor:   r.Sur(),
		Attrs:       r.ValueMap(),
	}
}

func encodeClassRecords(e *codec.Buf, classes []object.ClassRecord) {
	e.Uvarint(uint64(len(classes)))
	for _, c := range classes {
		e.Str(c.Name)
		e.Str(c.ElemType)
	}
}

func decodeClassRecords(r *codec.Reader) []object.ClassRecord {
	var classes []object.ClassRecord
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		classes = append(classes, object.ClassRecord{Name: r.Str(), ElemType: r.Str()})
	}
	return classes
}

func encodeIndexRecords(e *codec.Buf, idxs []object.IndexRecord) {
	e.Uvarint(uint64(len(idxs)))
	for _, ix := range idxs {
		e.Str(ix.Name)
		e.Str(ix.ClassName)
		e.Str(ix.AttrName)
		e.Uvarint(ix.CreatedSeq)
	}
}

func decodeIndexRecords(r *codec.Reader) []object.IndexRecord {
	var idxs []object.IndexRecord
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		idxs = append(idxs, object.IndexRecord{
			Name:       r.Str(),
			ClassName:  r.Str(),
			AttrName:   r.Str(),
			CreatedSeq: r.Uvarint(),
		})
	}
	return idxs
}

func encodeVersionState(e *codec.Buf, vs *version.ManagerState) {
	e.Uvarint(uint64(len(vs.Designs)))
	for _, d := range vs.Designs {
		e.Str(d.Name)
		e.Sur(d.Interface)
		e.Sur(d.Default)
	}
	e.Uvarint(uint64(len(vs.Versions)))
	for _, v := range vs.Versions {
		e.Sur(v.Object)
		e.Str(v.Design)
		e.Uvarint(uint64(v.No))
		e.Str(v.Alternative)
		e.Str(string(v.Status))
		e.Surs(v.DerivedFrom)
	}
}

func decodeVersionState(r *codec.Reader) *version.ManagerState {
	vs := &version.ManagerState{}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		vs.Designs = append(vs.Designs, version.DesignRecord{
			Name:      r.Str(),
			Interface: r.Sur(),
			Default:   r.Sur(),
		})
	}
	for i, n := uint64(0), r.Uvarint(); i < n && r.Err() == nil; i++ {
		vs.Versions = append(vs.Versions, version.VersionRecord{
			Object:      r.Sur(),
			Design:      r.Str(),
			No:          int(r.Uvarint()),
			Alternative: r.Str(),
			Status:      version.Status(r.Str()),
			DerivedFrom: r.Surs(),
		})
	}
	return vs
}
