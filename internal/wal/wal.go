// Package wal applies journaled operations during recovery and
// serializes full-state snapshots. The store's operations are
// deterministic and journaled in execution order, so replaying the
// journal against the snapshot state reproduces the exact pre-crash
// state, including surrogates and binding bookkeeping; creation ops carry
// the originally assigned surrogate and replay verifies it.
package wal

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/version"
)

// Replay decodes and applies journal records in order (recover mode).
// The storage layer has already expanded batch frames, so each record is
// one encoded op.
//
// Concurrent writers on the sharded store may append ops to the journal
// out of sequence-counter order (each op's sequence is assigned inside
// its shard's critical section, but the group-commit batcher serializes
// appends by arrival). Replay therefore primes the store's counters from
// each op's recorded Seq/Out before re-executing it, so the re-execution
// reproduces the original assignment, and finally restores the counters
// to the maxima seen.
func Replay(records [][]byte, s *object.Store, vm *version.Manager) error {
	return ReplayN(records, s, vm, 1)
}

// minParallelRun is the smallest run of shard-local ops worth fanning
// out; below it the goroutine handoff costs more than the replay.
const minParallelRun = 64

// shardLocal reports whether an op can replay inside its owning shard
// alone, with its journaled outcome applied verbatim: attribute writes
// carrying their sequence and acknowledgements carrying their resolved
// value. Everything else — creation, topology, legacy records without a
// recorded Seq — is a barrier that replays serially.
func shardLocal(op *oplog.Op) bool {
	switch op.Kind {
	case oplog.KindSetAttr:
		return op.Seq > 0
	case oplog.KindAcknowledge:
		return op.Num > 0
	}
	return false
}

// applyShardLocal applies one shard-local op without touching the global
// counters (the journaled values are applied verbatim).
func applyShardLocal(op *oplog.Op, s *object.Store) error {
	switch op.Kind {
	case oplog.KindSetAttr:
		return s.SetAttrAt(op.Sur, op.Name, op.Value, op.Seq)
	case oplog.KindAcknowledge:
		return s.AcknowledgeAt(op.Name, op.Sur, op.Num, op.Seq)
	}
	return fmt.Errorf("wal: op kind %d is not shard-local", op.Kind)
}

// ReplayN is Replay with up to `workers` goroutines (<= 0: GOMAXPROCS).
//
// The journal is split into maximal runs of *shard-local* ops — attribute
// writes and acknowledgements, which in a long-running store are almost
// the entire tail — separated by structural barriers (creation, bind,
// delete, version ops), which replay serially as before. Within a run,
// ops partition by owning shard (object.Store.ShardIndex) and each
// partition replays on its own goroutine in journal order. This is the
// serialization order: a shard-local op's sequence number is assigned and
// journaled inside its shard's critical section, so per-shard journal
// order equals per-shard execution order, while effects that cross shards
// (binding bookkeeping) are commuting atomics whose outcome the ops carry
// explicitly. The merged result is therefore byte-identical to a serial
// replay ordered by the global Op.Seq, for any worker count.
func ReplayN(records [][]byte, s *object.Store, vm *version.Manager, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ops := make([]*oplog.Op, len(records))
	if workers > 1 && len(records) >= minParallelRun {
		if err := decodeAll(records, ops, workers); err != nil {
			return err
		}
	} else {
		for i, rec := range records {
			op, err := oplog.Decode(rec)
			if err != nil {
				return fmt.Errorf("wal: record %d: %w", i, err)
			}
			ops[i] = op
		}
	}

	var maxSeq uint64
	var maxSur domain.Surrogate
	maxSeq = s.Seq()
	i := 0
	for i < len(ops) {
		op := ops[i]
		if shardLocal(op) && workers > 1 {
			j := i
			for j < len(ops) && shardLocal(ops[j]) {
				if ops[j].Seq > maxSeq {
					maxSeq = ops[j].Seq
				}
				j++
			}
			if j-i >= minParallelRun {
				if err := replayRun(ops[i:j], s, i, workers); err != nil {
					return err
				}
				i = j
				continue
			}
			// Small run: not worth the fan-out, fall through op by op.
		}
		s.PrimeReplay(op.Seq, op.Out)
		if err := Apply(op, s, vm, true); err != nil {
			return fmt.Errorf("wal: record %d: %w", i, err)
		}
		if op.Seq > maxSeq {
			maxSeq = op.Seq
		}
		if op.Out > maxSur {
			maxSur = op.Out
		}
		if cur := s.Seq(); cur > maxSeq {
			maxSeq = cur // pre-Seq logs replay in append order
		}
		i++
	}
	s.FinishReplay(maxSeq, maxSur)
	return nil
}

// decodeAll decodes records into ops on `workers` goroutines (records
// are independent; only application has ordering constraints).
func decodeAll(records [][]byte, ops []*oplog.Op, workers int) error {
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(records) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(records) {
			hi = len(records)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				op, err := oplog.Decode(records[i])
				if err != nil {
					errs[w] = fmt.Errorf("wal: record %d: %w", i, err)
					return
				}
				ops[i] = op
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// replayRun applies one run of shard-local ops, partitioned by owning
// shard, one goroutine per non-empty partition (bounded by workers via
// partition interleaving). base is the run's first global record index,
// for error reporting. On concurrent failures the error of the earliest
// record wins, matching what a serial replay would have reported first.
func replayRun(run []*oplog.Op, s *object.Store, base, workers int) error {
	nshards := s.Shards()
	byShard := make([][]int, nshards)
	for i, op := range run {
		si := s.ShardIndex(op.Sur)
		byShard[si] = append(byShard[si], i)
	}
	if workers > nshards {
		workers = nshards
	}
	type fail struct {
		idx int
		err error
	}
	fails := make([]*fail, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si := w; si < nshards; si += workers {
				for _, i := range byShard[si] {
					if err := applyShardLocal(run[i], s); err != nil {
						if fails[w] == nil || i < fails[w].idx {
							fails[w] = &fail{idx: i, err: err}
						}
						break // this shard's tail depends on the failed op
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var first *fail
	for _, f := range fails {
		if f != nil && (first == nil || f.idx < first.idx) {
			first = f
		}
	}
	if first != nil {
		return fmt.Errorf("wal: record %d: %w", base+first.idx, first.err)
	}
	return nil
}

// Apply executes the op against a store and version manager.
//
// In recover mode, version-manager ops referencing objects that no longer
// exist are skipped: version registrations are journaled by the database
// facade slightly after their execution, so a concurrent delete can
// legitimately precede them in the journal.
func Apply(op *oplog.Op, s *object.Store, vm *version.Manager, recover bool) error {
	verify := func(got domain.Surrogate, err error) error {
		if err != nil {
			return err
		}
		if op.Out != 0 && got != op.Out {
			return fmt.Errorf("wal: replay divergence: op %d produced %s, journal says %s", op.Kind, got, op.Out)
		}
		return nil
	}
	lenient := func(err error) error {
		if err == nil || !recover {
			return err
		}
		if errors.Is(err, version.ErrNotAVersion) || errors.Is(err, version.ErrDuplicate) ||
			errors.Is(err, version.ErrNoSuchDesign) || errors.Is(err, object.ErrNoSuchObject) {
			return nil
		}
		return err
	}
	switch op.Kind {
	case oplog.KindDefineClass:
		return s.DefineClass(op.Name, op.Name2)
	case oplog.KindNewObject:
		return verify(s.NewObject(op.Name, op.Name2))
	case oplog.KindNewSubobject:
		return verify(s.NewSubobject(op.Sur, op.Name))
	case oplog.KindNewRelSubobject:
		return verify(s.NewRelSubobject(op.Sur, op.Name))
	case oplog.KindSetAttr:
		return s.SetAttr(op.Sur, op.Name, op.Value)
	case oplog.KindRelate:
		return verify(s.Relate(op.Name, object.Participants(op.Parts)))
	case oplog.KindRelateIn:
		return verify(s.RelateIn(op.Sur, op.Name, object.Participants(op.Parts)))
	case oplog.KindBind:
		return verify(s.Bind(op.Name, op.Sur, op.Sur2))
	case oplog.KindUnbind:
		return s.Unbind(op.Name, op.Sur)
	case oplog.KindAcknowledge:
		if op.Num > 0 {
			// The op carries the sequence value the live call resolved to;
			// applying it directly keeps replay independent of how the
			// concurrent transmitter update was interleaved in the journal.
			return s.AcknowledgeAt(op.Name, op.Sur, op.Num, op.Seq)
		}
		return s.Acknowledge(op.Name, op.Sur)
	case oplog.KindDelete:
		return s.Delete(op.Sur)
	case oplog.KindDeletePolicy:
		s.SetDeletePolicy(object.DeletePolicy(op.Num))
		return nil
	case oplog.KindDefineDesign:
		_, err := vm.DefineDesign(op.Name, op.Sur)
		return lenient(err)
	case oplog.KindAddVersion:
		_, err := vm.AddVersion(op.Name, op.Sur, op.Surs, op.Name2)
		return lenient(err)
	case oplog.KindSetStatus:
		return lenient(vm.SetStatus(op.Sur, version.Status(op.Name)))
	case oplog.KindSetDefault:
		return lenient(vm.SetDefault(op.Name, op.Sur))
	case oplog.KindCreateIndex:
		attr := ""
		if sv, ok := op.Value.(domain.Str); ok {
			attr = string(sv)
		}
		return s.CreateIndex(op.Name, op.Name2, attr)
	case oplog.KindDropIndex:
		return s.DropIndex(op.Name)
	default:
		return fmt.Errorf("wal: unknown op kind %d", op.Kind)
	}
}
