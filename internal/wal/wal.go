// Package wal applies journaled operations during recovery and
// serializes full-state snapshots. The store's operations are
// deterministic and journaled in execution order, so replaying the
// journal against the snapshot state reproduces the exact pre-crash
// state, including surrogates and binding bookkeeping; creation ops carry
// the originally assigned surrogate and replay verifies it.
package wal

import (
	"errors"
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/version"
)

// Replay decodes and applies journal records in order (recover mode).
// The storage layer has already expanded batch frames, so each record is
// one encoded op.
//
// Concurrent writers on the sharded store may append ops to the journal
// out of sequence-counter order (each op's sequence is assigned inside
// its shard's critical section, but the group-commit batcher serializes
// appends by arrival). Replay therefore primes the store's counters from
// each op's recorded Seq/Out before re-executing it, so the re-execution
// reproduces the original assignment, and finally restores the counters
// to the maxima seen.
func Replay(records [][]byte, s *object.Store, vm *version.Manager) error {
	var maxSeq uint64
	var maxSur domain.Surrogate
	maxSeq = s.Seq()
	for i, rec := range records {
		op, err := oplog.Decode(rec)
		if err != nil {
			return fmt.Errorf("wal: record %d: %w", i, err)
		}
		s.PrimeReplay(op.Seq, op.Out)
		if err := Apply(op, s, vm, true); err != nil {
			return fmt.Errorf("wal: record %d: %w", i, err)
		}
		if op.Seq > maxSeq {
			maxSeq = op.Seq
		}
		if op.Out > maxSur {
			maxSur = op.Out
		}
		if cur := s.Seq(); cur > maxSeq {
			maxSeq = cur // pre-Seq logs replay in append order
		}
	}
	s.FinishReplay(maxSeq, maxSur)
	return nil
}

// Apply executes the op against a store and version manager.
//
// In recover mode, version-manager ops referencing objects that no longer
// exist are skipped: version registrations are journaled by the database
// facade slightly after their execution, so a concurrent delete can
// legitimately precede them in the journal.
func Apply(op *oplog.Op, s *object.Store, vm *version.Manager, recover bool) error {
	verify := func(got domain.Surrogate, err error) error {
		if err != nil {
			return err
		}
		if op.Out != 0 && got != op.Out {
			return fmt.Errorf("wal: replay divergence: op %d produced %s, journal says %s", op.Kind, got, op.Out)
		}
		return nil
	}
	lenient := func(err error) error {
		if err == nil || !recover {
			return err
		}
		if errors.Is(err, version.ErrNotAVersion) || errors.Is(err, version.ErrDuplicate) ||
			errors.Is(err, version.ErrNoSuchDesign) || errors.Is(err, object.ErrNoSuchObject) {
			return nil
		}
		return err
	}
	switch op.Kind {
	case oplog.KindDefineClass:
		return s.DefineClass(op.Name, op.Name2)
	case oplog.KindNewObject:
		return verify(s.NewObject(op.Name, op.Name2))
	case oplog.KindNewSubobject:
		return verify(s.NewSubobject(op.Sur, op.Name))
	case oplog.KindNewRelSubobject:
		return verify(s.NewRelSubobject(op.Sur, op.Name))
	case oplog.KindSetAttr:
		return s.SetAttr(op.Sur, op.Name, op.Value)
	case oplog.KindRelate:
		return verify(s.Relate(op.Name, object.Participants(op.Parts)))
	case oplog.KindRelateIn:
		return verify(s.RelateIn(op.Sur, op.Name, object.Participants(op.Parts)))
	case oplog.KindBind:
		return verify(s.Bind(op.Name, op.Sur, op.Sur2))
	case oplog.KindUnbind:
		return s.Unbind(op.Name, op.Sur)
	case oplog.KindAcknowledge:
		if op.Num > 0 {
			// The op carries the sequence value the live call resolved to;
			// applying it directly keeps replay independent of how the
			// concurrent transmitter update was interleaved in the journal.
			return s.AcknowledgeAt(op.Name, op.Sur, op.Num)
		}
		return s.Acknowledge(op.Name, op.Sur)
	case oplog.KindDelete:
		return s.Delete(op.Sur)
	case oplog.KindDeletePolicy:
		s.SetDeletePolicy(object.DeletePolicy(op.Num))
		return nil
	case oplog.KindDefineDesign:
		_, err := vm.DefineDesign(op.Name, op.Sur)
		return lenient(err)
	case oplog.KindAddVersion:
		_, err := vm.AddVersion(op.Name, op.Sur, op.Surs, op.Name2)
		return lenient(err)
	case oplog.KindSetStatus:
		return lenient(vm.SetStatus(op.Sur, version.Status(op.Name)))
	case oplog.KindSetDefault:
		return lenient(vm.SetDefault(op.Name, op.Sur))
	default:
		return fmt.Errorf("wal: unknown op kind %d", op.Kind)
	}
}
