package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

// byteRec is a trivial Record for pipeline tests.
type byteRec []byte

func (r byteRec) Encode() []byte { return []byte(r) }

func newGroup(t *testing.T, cfg GroupConfig) (*Group, string) {
	t.Helper()
	l, path := openFresh(t)
	return NewGroup(l, cfg), path
}

func reopenRecords(t *testing.T, path string) [][]byte {
	t.Helper()
	l, recs, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	return recs
}

func TestGroupDurableRoundtrip(t *testing.T) {
	g, path := newGroup(t, GroupConfig{SyncCadence: 1, WaitSync: true})
	for i := 0; i < 5; i++ {
		if seq := g.Enqueue(byteRec(fmt.Sprintf("rec-%d", i))); seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		if err := g.CommitTail(); err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats()
	if st.Durable != 5 || st.Records != 5 {
		t.Fatalf("stats = %+v, want 5 durable records", st)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	recs := reopenRecords(t, path)
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("rec-%d", i); string(r) != want {
			t.Errorf("record %d = %q, want %q", i, r, want)
		}
	}
}

func TestGroupCoalescesConcurrentWriters(t *testing.T) {
	const writers, opsEach = 8, 40
	g, path := newGroup(t, GroupConfig{SyncCadence: 1, WaitSync: true})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				g.Enqueue(byteRec(fmt.Sprintf("w%d-%d", w, i)))
				if err := g.CommitTail(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := g.Stats()
	if st.Records != writers*opsEach {
		t.Fatalf("records = %d, want %d", st.Records, writers*opsEach)
	}
	// With 8 writers against a real fsync, group commit must coalesce:
	// strictly fewer fsyncs than records, and at least one multi-record
	// batch.
	if st.Syncs >= st.Records {
		t.Errorf("no coalescing: %d syncs for %d records", st.Syncs, st.Records)
	}
	if st.MaxBatch < 2 {
		t.Errorf("max batch = %d, want >= 2", st.MaxBatch)
	}
	var hist uint64
	for _, n := range st.BatchSizes {
		hist += n
	}
	if hist != st.Batches {
		t.Errorf("histogram total %d != batches %d", hist, st.Batches)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if recs := reopenRecords(t, path); len(recs) != writers*opsEach {
		t.Fatalf("recovered %d records, want %d", len(recs), writers*opsEach)
	}
}

func TestGroupAsyncJanitorDrains(t *testing.T) {
	g, path := newGroup(t, GroupConfig{SyncCadence: 4, WaitSync: false})
	for i := 0; i < 10; i++ {
		g.Enqueue(byteRec{byte(i)})
	}
	// CommitTail does not block in async mode; Flush makes all durable.
	if err := g.CommitTail(); err != nil {
		t.Fatal(err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Durable != 10 {
		t.Fatalf("durable = %d, want 10", st.Durable)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if recs := reopenRecords(t, path); len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
}

func TestGroupWaitSyncJanitorDrainsUnclaimed(t *testing.T) {
	// Records nobody waits for (store-level mutations bypassing the
	// facade) must still reach disk promptly in WaitSync mode.
	g, _ := newGroup(t, GroupConfig{SyncCadence: 1, WaitSync: true})
	defer g.Close()
	g.Enqueue(byteRec("orphan"))
	deadline := make(chan struct{})
	go func() {
		for {
			if g.Stats().Durable >= 1 {
				close(deadline)
				return
			}
		}
	}()
	<-deadline
}

func TestGroupStickyError(t *testing.T) {
	g, _ := newGroup(t, GroupConfig{SyncCadence: 1, WaitSync: true})
	boom := errors.New("boom")
	g.Fail(boom)
	if err := g.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
	if seq := g.Enqueue(byteRec("late")); seq != 0 {
		t.Errorf("Enqueue after failure returned seq %d, want 0", seq)
	}
	if err := g.CommitTail(); !errors.Is(err, boom) {
		t.Errorf("CommitTail = %v, want sticky %v", err, boom)
	}
	if err := g.Flush(); !errors.Is(err, boom) {
		t.Errorf("Flush = %v, want sticky %v", err, boom)
	}
	if err := g.Close(); !errors.Is(err, boom) {
		t.Errorf("Close = %v, want sticky %v", err, boom)
	}
}

func TestGroupIOErrorPoisons(t *testing.T) {
	g, _ := newGroup(t, GroupConfig{SyncCadence: 1, WaitSync: true})
	// Force a real I/O failure: close the file out from under the log.
	g.log.f.Close()
	g.Enqueue(byteRec("doomed"))
	if err := g.CommitTail(); err == nil {
		t.Fatal("CommitTail should surface the write failure")
	}
	if err := g.Err(); err == nil {
		t.Fatal("error should be sticky")
	}
	_ = g.Close()
}

func TestGroupSwapLog(t *testing.T) {
	g, path := newGroup(t, GroupConfig{SyncCadence: 1, WaitSync: true})
	g.Enqueue(byteRec("old-epoch"))
	if err := g.CommitTail(); err != nil {
		t.Fatal(err)
	}
	next, _ := openFresh(t)
	old, err := g.SwapLog(next)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	g.Enqueue(byteRec("new-epoch"))
	if err := g.CommitTail(); err != nil {
		t.Fatal(err)
	}
	nextPath := next.path
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if recs := reopenRecords(t, path); len(recs) != 1 || string(recs[0]) != "old-epoch" {
		t.Errorf("old log = %q", recs)
	}
	if recs := reopenRecords(t, nextPath); len(recs) != 1 || string(recs[0]) != "new-epoch" {
		t.Errorf("new log = %q", recs)
	}
}

func TestAppendBatchTornTailDropsWholeBatch(t *testing.T) {
	l, path := openFresh(t)
	if err := l.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	batch := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	if err := l.AppendBatch(batch, true); err != nil {
		t.Fatal(err)
	}
	size := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Intact: the batch expands into its records.
	if recs := reopenRecords(t, path); len(recs) != 4 {
		t.Fatalf("intact reopen: %d records, want 4", len(recs))
	}
	// Torn mid-frame: the whole batch vanishes, the prefix survives.
	if err := os.Truncate(path, size-2); err != nil {
		t.Fatal(err)
	}
	recs := reopenRecords(t, path)
	if len(recs) != 1 || string(recs[0]) != "keep" {
		t.Fatalf("torn reopen = %q, want just \"keep\"", recs)
	}
}

func TestAppendBatchSingleRecordUsesLegacyFrame(t *testing.T) {
	l, path := openFresh(t)
	if err := l.AppendBatch([][]byte{[]byte("solo")}, true); err != nil {
		t.Fatal(err)
	}
	// A single record not starting with the marker is framed exactly like
	// Append would frame it.
	sizeBatch := l.Size()
	if err := l.Append([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	if l.Size()-sizeBatch != sizeBatch {
		t.Errorf("single-record batch frame differs from legacy frame: %d vs %d",
			sizeBatch, l.Size()-sizeBatch)
	}
	l.Close()
	recs := reopenRecords(t, path)
	if len(recs) != 2 || string(recs[0]) != "solo" || string(recs[1]) != "solo" {
		t.Fatalf("reopen = %q", recs)
	}
}

func TestAppendBatchEscapesMarkerPayload(t *testing.T) {
	l, path := openFresh(t)
	tricky := []byte{BatchMarker, 1, 2, 3}
	if err := l.AppendBatch([][]byte{tricky}, true); err != nil {
		t.Fatal(err)
	}
	l.Close()
	recs := reopenRecords(t, path)
	if len(recs) != 1 || !bytes.Equal(recs[0], tricky) {
		t.Fatalf("marker-prefixed payload mangled: %q", recs)
	}
}
