package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openFresh(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	return l, path
}

func TestAppendAndReopen(t *testing.T) {
	l, path := openFresh(t)
	payloads := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Size() == 0 {
		t.Error("size should grow")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(recs[i], payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, recs[i], payloads[i])
		}
	}
	// Appending after reopen extends the log.
	if err := l2.Append([]byte("five")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("after reopen-append: %d records", len(recs))
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := openFresh(t)
	if err := l.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("will-be-torn")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: chop bytes off the end.
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := OpenLog(path)
	if err != nil {
		t.Fatalf("torn tail must recover: %v", err)
	}
	defer l2.Close()
	if len(recs) != 1 || string(recs[0]) != "intact" {
		t.Fatalf("records = %q", recs)
	}
	// The torn tail is gone: new appends land cleanly.
	if err := l2.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, err = OpenLog(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("after heal: %q, %v", recs, err)
	}
}

func TestTornHeaderTruncated(t *testing.T) {
	l, path := openFresh(t)
	if err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Append 3 garbage bytes (a torn header).
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{1, 2, 3})
	f.Close()
	_, recs, err := OpenLog(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("torn header: %q, %v", recs, err)
	}
}

func TestInteriorCorruptionFatal(t *testing.T) {
	l, path := openFresh(t)
	if err := l.Append([]byte("first-record-payload")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("second-record-payload")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a byte inside the first record's payload.
	b, _ := os.ReadFile(path)
	b[10] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenLog(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption must be fatal, got %v", err)
	}
}

func TestCorruptFinalRecordTolerated(t *testing.T) {
	// A bit flip in the very last record is indistinguishable from a torn
	// write and is dropped.
	l, path := openFresh(t)
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("last")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenLog(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("final corruption: %q, %v", recs, err)
	}
}

func TestReset(t *testing.T) {
	l, path := openFresh(t)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Error("size after reset")
	}
	if err := l.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err := OpenLog(path)
	if err != nil || len(recs) != 1 || string(recs[0]) != "new" {
		t.Fatalf("after reset: %q, %v", recs, err)
	}
}

func TestSyncPolicy(t *testing.T) {
	l, _ := openFresh(t)
	defer l.Close()
	l.SetSync(0) // no fsync on append
	for i := 0; i < 100; i++ {
		if err := l.Append([]byte("bulk")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	// Missing file: (nil, nil).
	b, err := ReadSnapshot(path)
	if err != nil || b != nil {
		t.Fatalf("missing snapshot: %v, %v", b, err)
	}
	payload := []byte("snapshot-payload")
	if err := WriteSnapshot(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read = %q, %v", got, err)
	}
	// Overwrite is atomic (tmp+rename): the tmp file must not remain.
	if err := WriteSnapshot(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("tmp file left behind")
	}
	got, _ = ReadSnapshot(path)
	if string(got) != "v2" {
		t.Errorf("after overwrite: %q", got)
	}
	// Corruption detected.
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(path, raw, 0o644)
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt snapshot: %v", err)
	}
	// Truncated header detected.
	os.WriteFile(path, []byte{1, 2}, 0o644)
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short snapshot: %v", err)
	}
	// Length mismatch detected.
	os.WriteFile(path, []byte{9, 0, 0, 0, 0, 0, 0, 0, 1, 2}, 0o644)
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("length mismatch: %v", err)
	}
}
