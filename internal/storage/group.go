package storage

import (
	"errors"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"cadcam/internal/fault"
)

// Failpoints of the group-commit pipeline. The leader points sit in the
// window where mutations are already applied (and acknowledged records
// enqueued) but the batch has not reached the log: a crash there loses
// the whole in-flight batch, which recovery must tolerate; an error
// there poisons the pipeline exactly like a write failure.
var (
	fpLeaderPre     = fault.New("group/leader-precommit")
	fpLeaderEncoded = fault.New("group/leader-encoded")
	fpStraggler     = fault.New("group/straggler-window")
)

// ErrCommitterClosed reports an operation on a closed Group.
var ErrCommitterClosed = errors.New("storage: committer closed")

// Record is one journal payload source. Encoding is deferred to the
// committing goroutine, so mutations spend no CPU on serialization while
// holding database-level locks; implementations must be immutable once
// enqueued.
type Record interface{ Encode() []byte }

// GroupConfig configures a Group committer.
type GroupConfig struct {
	// SyncCadence is the background fsync cadence for batches no mutation
	// is waiting on: n >= 1 fsyncs after at least n records since the
	// last sync; 0 never fsyncs on append (Flush/Close still sync). In
	// WaitSync mode every commit batch is fsynced regardless.
	SyncCadence int
	// WaitSync selects durable group-commit mode: CommitTail blocks until
	// the batch carrying the caller's records is written and fsynced.
	WaitSync bool
}

// GroupStats is a snapshot of the pipeline counters.
type GroupStats struct {
	// Enqueued/Written/Durable are record sequence high-water marks:
	// assigned, written to the OS, and fsynced.
	Enqueued uint64 `json:"enqueued"`
	Written  uint64 `json:"written"`
	Durable  uint64 `json:"durable"`
	// Queued is the number of records currently waiting for a batch.
	Queued int `json:"queued"`
	// Batches and Records count committed write batches and the records
	// they carried; Records/Batches is the mean coalescing factor.
	Batches uint64 `json:"batches"`
	Records uint64 `json:"records"`
	// Syncs counts fsyncs issued by the pipeline; Syncs < Records means
	// group commit amortized fsyncs across concurrent mutations.
	Syncs uint64 `json:"syncs"`
	// MaxBatch is the largest batch committed so far.
	MaxBatch int `json:"max_batch"`
	// BatchSizes is a power-of-two histogram of batch sizes:
	// 1, 2, 3-4, 5-8, 9-16, ..., 513+.
	BatchSizes [batchBuckets]uint64 `json:"batch_sizes"`
	// StallNs is the total time mutations spent blocked waiting for
	// durability (the group-commit wait, not the store lock).
	StallNs uint64 `json:"stall_ns"`
}

const batchBuckets = 11

// batchBucket maps a batch size to its histogram bucket.
func batchBucket(n int) int {
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3-4→2, 5-8→3, ...
	if b >= batchBuckets {
		return batchBuckets - 1
	}
	return b
}

// Group is the group-commit pipeline over one Log. Mutations enqueue
// encoded-later records (cheap, called under the store mutex to preserve
// the deterministic replay order) and then — in WaitSync mode — block in
// CommitTail until their records are on disk. Commit uses leader/follower
// batching: the first waiter becomes the leader, takes the whole queue,
// encodes it outside every lock, writes it as one frame and fsyncs once;
// followers that queued meanwhile are woken together, and one of them
// leads the next batch. A lone writer therefore commits inline with no
// goroutine handoff, while N concurrent writers share one fsync.
//
// A janitor goroutine drains records nobody waits for (async mode, and
// store-level mutations that bypass the facade's durability wait), so
// every record reaches the OS promptly even without waiters.
type Group struct {
	mu   sync.Mutex
	work *sync.Cond // janitor wakeup: queue grew, error, close
	done *sync.Cond // batch completion broadcast

	log   *Log
	cfg   GroupConfig
	queue []Record

	enqueued  uint64 // last sequence assigned
	written   uint64 // last sequence written to the OS
	synced    uint64 // last sequence fsynced
	sinceSync int    // records written since the last fsync (cadence)

	leading   bool // a batch is in flight (its leader dropped the mutex)
	waiters   int
	lastBatch int // size of the last committed batch (straggler heuristic)
	closed    bool
	err       error // sticky: first I/O failure poisons the pipeline

	stopped chan struct{}

	batches  uint64
	records  uint64
	syncs    uint64
	maxBatch int
	sizeHist [batchBuckets]uint64
	stallNs  uint64
}

// NewGroup starts a committer over log. The Group owns the log until
// Close (or until SwapLog hands ownership of a replacement).
func NewGroup(log *Log, cfg GroupConfig) *Group {
	g := &Group{log: log, cfg: cfg, stopped: make(chan struct{})}
	g.work = sync.NewCond(&g.mu)
	g.done = sync.NewCond(&g.mu)
	go g.janitor()
	return g
}

// Enqueue assigns the next journal sequence number to rec and queues it
// for the next commit batch. Callers serialize Enqueue externally (the
// store mutex / the version lock), which fixes the replay order; the call
// itself does no encoding and no I/O. Records enqueued after a sticky
// error or Close are dropped (sequence 0): the store state no longer
// converges with the journal and mutations must observe Err.
func (g *Group) Enqueue(rec Record) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed || g.err != nil {
		return 0
	}
	g.queue = append(g.queue, rec)
	g.enqueued++
	g.work.Signal()
	return g.enqueued
}

// CommitTail makes everything enqueued so far durable before returning —
// in WaitSync mode by joining (or leading) a commit batch; in async mode
// it only surfaces the sticky error. This is the facade's per-mutation
// durability barrier.
func (g *Group) CommitTail() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.cfg.WaitSync || g.synced >= g.enqueued {
		return g.err
	}
	start := time.Now()
	err := g.waitLocked(g.enqueued)
	g.stallNs += uint64(time.Since(start))
	return err
}

// Flush writes and fsyncs everything enqueued so far, in any mode. The
// checkpoint path uses it to drain the pipeline into the outgoing epoch's
// log before swapping.
func (g *Group) Flush() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waitLocked(g.enqueued)
}

// waitLocked drives the pipeline until target is fsynced: while a batch
// is in flight it waits for the broadcast, otherwise the calling
// goroutine becomes the leader and commits the queue itself.
func (g *Group) waitLocked(target uint64) error {
	g.waiters++
	for g.err == nil && g.synced < target {
		if g.leading {
			g.done.Wait()
		} else {
			g.commitBatchLocked(true)
		}
	}
	g.waiters--
	return g.err
}

// commitBatchLocked takes the whole queue, releases the mutex, encodes
// and writes the batch as one frame (fsyncing per sync), then reacquires
// the mutex, publishes the new high-water marks and wakes everyone.
// Callers must hold g.mu and ensure !g.leading.
func (g *Group) commitBatchLocked(sync bool) {
	if len(g.queue) == 0 && (!sync || g.synced >= g.written) {
		return
	}
	g.leading = true
	// Straggler window: under concurrency, writers freed by the previous
	// batch are typically mid-mutation, microseconds from enqueueing.
	// Yield while the queue is still growing so they join this batch
	// instead of each leading a batch of one. Gated on evidence of
	// concurrency (a multi-record queue or previous batch) so a lone
	// writer's commit latency stays untouched.
	var inject error
	if len(g.queue) > 1 || g.lastBatch > 1 {
		// Abort (or crash) in the straggler window: the leader has claimed
		// the batch but stragglers are still joining.
		if inject = fpStraggler.Hit(); inject == nil {
			for prev := len(g.queue); ; prev = len(g.queue) {
				g.mu.Unlock()
				runtime.Gosched()
				g.mu.Lock()
				if len(g.queue) == prev {
					break
				}
			}
		}
	}
	batch := g.queue
	g.queue = nil
	end := g.enqueued
	log := g.log
	g.mu.Unlock()

	err := inject
	if err == nil {
		err = fpLeaderPre.Hit()
	}
	if err == nil {
		if len(batch) == 0 {
			err = log.Sync() // records already written, only the fsync owed
		} else {
			payloads := make([][]byte, len(batch))
			for i, rec := range batch {
				payloads[i] = rec.Encode()
			}
			if err = fpLeaderEncoded.Hit(); err == nil {
				err = log.AppendBatch(payloads, sync)
			}
		}
	}

	g.mu.Lock()
	g.leading = false
	if err != nil {
		g.err = err
		g.queue = nil
	} else {
		g.written = end
		if len(batch) > 0 {
			g.lastBatch = len(batch)
			g.batches++
			g.records += uint64(len(batch))
			if len(batch) > g.maxBatch {
				g.maxBatch = len(batch)
			}
			g.sizeHist[batchBucket(len(batch))]++
		}
		if sync {
			g.synced = end
			g.sinceSync = 0
			g.syncs++
		} else {
			g.sinceSync += len(batch)
		}
	}
	g.done.Broadcast()
	g.work.Signal()
}

// janitorGrace is how long the janitor leaves a freshly enqueued record
// unclaimed before draining it itself. A facade mutation reaches
// CommitTail within microseconds of Enqueue, so the grace period is only
// ever paid by records nobody waits for.
const janitorGrace = 500 * time.Microsecond

// janitor drains batches no mutation is waiting for: all batches in
// async mode (fsyncing per the cadence), and — in WaitSync mode —
// records whose writers do not block (store-level mutations outside the
// facade). When waiters are present they lead their own batches and the
// janitor stands down.
func (g *Group) janitor() {
	g.mu.Lock()
	var graced uint64 // enqueued mark already granted a grace period
	for {
		for !g.closed && g.err == nil &&
			(len(g.queue) == 0 || g.leading || (g.cfg.WaitSync && g.waiters > 0)) {
			g.work.Wait()
		}
		if g.closed || g.err != nil {
			break
		}
		if g.cfg.WaitSync && g.enqueued > graced {
			// In durable mode the writer that just enqueued is normally
			// about to arrive at CommitTail and lead (or join) a batch
			// itself; committing here would race it for the mutex and
			// fsync undersized batches. Grant each record one grace
			// period and drain only what remains unclaimed — store-level
			// mutations that bypass the facade's durability wait.
			graced = g.enqueued
			g.mu.Unlock()
			time.Sleep(janitorGrace)
			g.mu.Lock()
			continue
		}
		sync := g.cfg.WaitSync ||
			(g.cfg.SyncCadence > 0 && g.sinceSync+len(g.queue) >= g.cfg.SyncCadence)
		g.commitBatchLocked(sync)
	}
	g.mu.Unlock()
	close(g.stopped)
}

// SwapLog flushes the pipeline into the current log and installs next in
// its place, returning the drained previous log (still open; the caller
// closes or removes it). The caller must exclude concurrent Enqueue —
// the checkpoint path holds the store exclusively.
func (g *Group) SwapLog(next *Log) (*Log, error) {
	if err := g.Flush(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrCommitterClosed
	}
	old := g.log
	g.log = next
	return old, nil
}

// Err returns the sticky pipeline error, if any. A non-nil result means
// records have been lost: durability is compromised and the database
// should be closed.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Fail poisons the pipeline with err (first error wins): queued records
// are dropped, waiters wake with the error, later Enqueues are rejected.
// Used by fault-injection tests; I/O errors arrive the same way
// internally.
func (g *Group) Fail(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err == nil {
		g.err = err
	}
	g.queue = nil
	g.done.Broadcast()
	g.work.Broadcast()
}

// Stats snapshots the pipeline counters.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupStats{
		Enqueued:   g.enqueued,
		Written:    g.written,
		Durable:    g.synced,
		Queued:     len(g.queue),
		Batches:    g.batches,
		Records:    g.records,
		Syncs:      g.syncs,
		MaxBatch:   g.maxBatch,
		BatchSizes: g.sizeHist,
		StallNs:    g.stallNs,
	}
}

// Close drains and fsyncs the queue, stops the janitor and closes the
// log. The Group must not be used afterwards.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		err := g.err
		g.mu.Unlock()
		return err
	}
	err := g.waitLocked(g.enqueued)
	g.closed = true
	g.work.Broadcast()
	g.done.Broadcast()
	log := g.log
	g.mu.Unlock()
	<-g.stopped
	if cerr := log.Close(); err == nil {
		err = cerr
	}
	return err
}
