package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzBatchFrame drives the batch-frame expander with arbitrary bytes.
// The decoder faces these bytes during recovery after a torn or corrupt
// write, so it must reject garbage with an error — never panic, never
// over-allocate from a corrupt count.
func FuzzBatchFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{BatchMarker})
	f.Add(frameBatch([][]byte{{1, 2, 3}}))
	f.Add(frameBatch([][]byte{{}, {0xFF}, make([]byte, 300)}))
	f.Add([]byte{BatchMarker, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // huge count
	f.Fuzz(func(t *testing.T, b []byte) {
		payloads, err := expandBatch(b)
		if err != nil {
			return
		}
		// A successful expansion must round-trip: re-framing the payloads
		// and expanding again yields the same records.
		again, err := expandBatch(frameBatch(payloads))
		if err != nil {
			t.Fatalf("re-expand of re-framed batch failed: %v", err)
		}
		if len(again) != len(payloads) {
			t.Fatalf("round-trip changed record count: %d != %d", len(again), len(payloads))
		}
	})
}

// FuzzLogScan writes arbitrary bytes as a journal file and opens it. The
// scan must treat any tail it cannot authenticate as torn (truncate) or
// corrupt (error) — it must never panic and never return records beyond
// the first bad frame.
func FuzzLogScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, headerSize-1))
	f.Add(make([]byte, headerSize+16))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // giant length, no body
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal-fuzz.log")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		log, records, err := OpenLog(path)
		if err != nil {
			return // corrupt interior: a clean rejection
		}
		defer log.Close()
		// Whatever survived must itself be a valid log: reopening after
		// the scan's truncation yields the same records.
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		log2, records2, err := OpenLog(path)
		if err != nil {
			t.Fatalf("reopen after truncating scan failed: %v", err)
		}
		defer log2.Close()
		if len(records2) != len(records) {
			t.Fatalf("truncated log not stable: %d records then %d", len(records), len(records2))
		}
	})
}
