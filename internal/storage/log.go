// Package storage implements the on-disk substrate of the database: an
// append-only record log with CRC-checked framing and torn-tail recovery,
// plus atomic snapshot files. The records themselves are opaque payloads;
// the wal package defines their logical content.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"cadcam/internal/fault"
)

// Failpoints of the log layer (see internal/fault). The torn-write and
// partial-batch points simulate a crash mid-write: the site writes a
// prefix of the frame and terminates, so recovery sees exactly the torn
// tail a real crash leaves behind.
var (
	fpAppendError  = fault.New("wal/append-error")
	fpSyncError    = fault.New("wal/sync-error")
	fpTornWrite    = fault.New("wal/torn-write")
	fpPartialBatch = fault.New("wal/partial-batch")
)

// ErrCorrupt reports a record whose checksum does not match. A corrupt
// record in the *middle* of the log is fatal; a torn record at the tail
// is truncated silently (the write never committed).
var ErrCorrupt = errors.New("storage: corrupt log record")

const headerSize = 8 // 4 bytes length + 4 bytes CRC32

// BatchMarker is the first payload byte of a batch frame: one CRC frame
// whose payload packs several logical records (group commit writes one
// frame per batch). Logical records written by the database start with an
// oplog kind byte, which must stay below this value; scan treats any
// payload starting with BatchMarker as a batch frame and expands it.
const BatchMarker byte = 0xF5

// Log is an append-only record log. Appends are atomic at the record
// level: a crash mid-write leaves a torn tail that Open truncates.
type Log struct {
	f    *os.File
	path string
	size int64
	// SyncEvery controls fsync: 1 = every append (durable, slow),
	// 0 = never (rely on Close/Checkpoint). Default 1.
	syncEvery int
	pending   int
}

// OpenLog opens (creating if necessary) the log at path, scans and
// returns all intact records, and truncates a torn tail.
func OpenLog(path string) (*Log, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: open log: %w", err)
	}
	records, validSize, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f, path: path, size: validSize, syncEvery: 1}, records, nil
}

// Frame is one intact CRC frame of a log: the byte range it occupies and
// the logical records its payload carries (batch frames expanded). Frame
// boundaries are the atomic commit units of the log — a group-commit
// batch lands as exactly one frame — which makes them the shipping units
// of replication too.
type Frame struct {
	// Offset is the byte offset of the frame header; End is the offset
	// just past the frame (the next frame's Offset).
	Offset, End int64
	// Records are the frame's logical records, batch frames expanded.
	Records [][]byte
}

// ScanFrames reads intact frames from r, starting at byte offset `from`
// (which must be a frame boundary) and stopping at `total` (the file
// size). It returns the frames and the offset just past the last intact
// one. A torn frame at the tail is not an error — scanning stops before
// it; a corrupt frame with more data behind it is interior corruption
// and fails with ErrCorrupt. This is the one frame-boundary scanner:
// recovery (via OpenLog) and the replication shipper both sit on it, so
// they can never disagree about where a batch starts or ends.
func ScanFrames(r io.ReaderAt, from, total int64) ([]Frame, int64, error) {
	var frames []Frame
	offset := from
	header := make([]byte, headerSize)
	for offset < total {
		if total-offset < headerSize {
			break // torn header
		}
		if _, err := r.ReadAt(header, offset); err != nil {
			return nil, 0, err
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if int64(length) > total-offset-headerSize {
			break // torn payload
		}
		payload := make([]byte, length)
		if _, err := r.ReadAt(payload, offset+headerSize); err != nil {
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if offset+headerSize+int64(length) >= total {
				break // torn final record (or torn batch: dropped whole)
			}
			return nil, 0, fmt.Errorf("%w at offset %d", ErrCorrupt, offset)
		}
		records := [][]byte{payload}
		if len(payload) > 0 && payload[0] == BatchMarker {
			// A CRC-valid batch frame is atomic: either the whole batch
			// replays or (torn, handled above) none of it does.
			sub, err := expandBatch(payload)
			if err != nil {
				return nil, 0, fmt.Errorf("%w at offset %d: %v", ErrCorrupt, offset, err)
			}
			records = sub
		}
		end := offset + headerSize + int64(length)
		frames = append(frames, Frame{Offset: offset, End: end, Records: records})
		offset = end
	}
	return frames, offset, nil
}

// ReadFrames scans the intact frames of the log at path from byte offset
// `from` without opening the file for writing and without truncating a
// torn tail — the read-only view a replication shipper takes of a live
// primary's journal (OpenLog would truncate bytes the primary is about
// to complete). A `from` beyond the current size returns no frames; a
// missing file returns an os.ErrNotExist-wrapped error.
func ReadFrames(path string, from int64) ([]Frame, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	if from > info.Size() {
		return nil, from, nil
	}
	return ScanFrames(f, from, info.Size())
}

// scan reads records until EOF or a torn/corrupt tail. It distinguishes a
// torn tail (incomplete final record: tolerated) from interior corruption
// (checksum mismatch followed by more data: fatal).
func scan(f *os.File) ([][]byte, int64, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	frames, end, err := ScanFrames(f, 0, info.Size())
	if err != nil {
		return nil, 0, err
	}
	var records [][]byte
	for _, fr := range frames {
		records = append(records, fr.Records...)
	}
	return records, end, nil
}

// frameBatch packs payloads into one batch-frame payload:
// [BatchMarker][uvarint count]([uvarint len][bytes])*.
func frameBatch(payloads [][]byte) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, p := range payloads {
		size += binary.MaxVarintLen64 + len(p)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, BatchMarker)
	buf = binary.AppendUvarint(buf, uint64(len(payloads)))
	for _, p := range payloads {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// expandBatch unpacks a batch-frame payload back into its records.
func expandBatch(payload []byte) ([][]byte, error) {
	if len(payload) == 0 || payload[0] != BatchMarker {
		return nil, errors.New("not a batch frame")
	}
	b := payload[1:] // skip marker
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, errors.New("bad batch count")
	}
	b = b[n:]
	if count > uint64(len(b)) {
		// Each record costs at least one length byte, so a count beyond
		// the remaining payload is corrupt; checking before allocating
		// keeps a flipped count byte from demanding an absurd slice.
		return nil, errors.New("bad batch count")
	}
	records := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		length, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < length {
			return nil, fmt.Errorf("bad batch record %d", i)
		}
		records = append(records, b[n:n+int(length)])
		b = b[n+int(length):]
	}
	if len(b) != 0 {
		return nil, errors.New("trailing bytes in batch frame")
	}
	return records, nil
}

// SetSync configures fsync frequency: n = fsync every n appends
// (n <= 0 disables fsync on append).
func (l *Log) SetSync(n int) { l.syncEvery = n }

// Append writes one record and, per the sync policy, fsyncs.
func (l *Log) Append(payload []byte) error {
	header := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(header); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	l.size += headerSize + int64(len(payload))
	l.pending++
	if l.syncEvery > 0 && l.pending >= l.syncEvery {
		l.pending = 0
		if err := l.sync(); err != nil {
			return err
		}
	}
	return nil
}

// AppendBatch writes payloads as one frame with a single write syscall —
// a legacy single-record frame for one payload, a batch frame otherwise —
// and fsyncs when sync is true, independent of the SetSync policy. A
// crash mid-write tears the whole frame: scan drops the entire batch, so
// a batch is committed atomically or not at all.
func (l *Log) AppendBatch(payloads [][]byte, sync bool) error {
	if err := fpAppendError.Hit(); err != nil {
		return fmt.Errorf("storage: append batch: %w", err)
	}
	if len(payloads) == 0 {
		if sync {
			return l.Sync()
		}
		return nil
	}
	payload := payloads[0]
	if len(payloads) > 1 || (len(payload) > 0 && payload[0] == BatchMarker) {
		// Multi-record batches get a batch frame; so does a single record
		// that happens to start with the marker byte, so scan can never
		// misread a plain record as a frame.
		payload = frameBatch(payloads)
	}
	buf := make([]byte, headerSize, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)
	if a := fpTornWrite.Fire(); a != nil {
		l.tear(buf, a, len(buf)/2)
		return fmt.Errorf("storage: append batch: %w", a.Err)
	}
	if len(payloads) > 1 {
		// Tear inside the packed records of a batch frame: header and part
		// of the payload land on disk, so scan sees a CRC mismatch at the
		// tail and must drop the whole batch.
		if a := fpPartialBatch.Fire(); a != nil {
			l.tear(buf, a, headerSize+(len(buf)-headerSize)*3/4)
			return fmt.Errorf("storage: append batch: %w", a.Err)
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("storage: append batch: %w", err)
	}
	l.size += int64(len(buf))
	if sync {
		l.pending = 0
		return l.sync()
	}
	l.pending += len(payloads)
	return nil
}

// tear writes a prefix of buf and, for an exit-kind action, terminates
// the process — the injected equivalent of the OS cutting a write short
// at a crash. The cut defaults to def; the arming's Arg overrides it.
// Error-kind armings skip the write (the frame never reaches the file)
// and return to the caller.
func (l *Log) tear(buf []byte, a *fault.Action, def int) {
	if a.Kind != fault.KindExit {
		return
	}
	cut := def
	if a.Arg > 0 && a.Arg < len(buf) {
		cut = a.Arg
	}
	_, _ = l.f.Write(buf[:cut])
	fault.Crash(*a)
}

// sync fsyncs the file, routing through the sync-error failpoint.
func (l *Log) sync() error {
	if err := fpSyncError.Hit(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Sync forces an fsync.
func (l *Log) Sync() error { return l.sync() }

// Size reports the current log size in bytes.
func (l *Log) Size() int64 { return l.size }

// Reset truncates the log to empty (after a checkpoint has captured its
// contents in a snapshot).
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.size = 0
	return l.f.Sync()
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// WriteSnapshot atomically replaces the snapshot file at path: the bytes
// are written to a temp file, fsynced, and renamed over the target.
func WriteSnapshot(path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: snapshot: %w", err)
	}
	header := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(header); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: snapshot rename: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshot loads and verifies a snapshot file. A missing file returns
// (nil, nil).
func ReadSnapshot(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if int(length) != len(b)-headerSize {
		return nil, fmt.Errorf("%w: snapshot length mismatch", ErrCorrupt)
	}
	payload := b[headerSize:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum", ErrCorrupt)
	}
	return payload, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best effort; not all platforms support dir sync
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
