package sim

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/paperschema"
)

// rig assembles simulation circuits over the gate schema.
type rig struct {
	t *testing.T
	s *object.Store
	// behavior implementations by function name (master copies).
	behaviors map[string]domain.Surrogate
}

func newRig(t *testing.T) *rig {
	t.Helper()
	s, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, s: s, behaviors: make(map[string]domain.Surrogate)}
}

func (r *rig) must(sur domain.Surrogate, err error) domain.Surrogate {
	r.t.Helper()
	if err != nil {
		r.t.Fatal(err)
	}
	return sur
}

func (r *rig) set(sur domain.Surrogate, attr string, v domain.Value) {
	r.t.Helper()
	if err := r.s.SetAttr(sur, attr, v); err != nil {
		r.t.Fatal(err)
	}
}

// iface builds a fresh interface instance with nIn inputs, nOut outputs.
func (r *rig) iface(nIn, nOut int) domain.Surrogate {
	r.t.Helper()
	root := r.must(r.s.NewObject(paperschema.TypeGateInterfaceI, ""))
	id := int64(1)
	for i := 0; i < nIn; i++ {
		pin := r.must(r.s.NewSubobject(root, "Pins"))
		r.set(pin, "InOut", domain.Sym("IN"))
		r.set(pin, "PinId", domain.Int(id))
		id++
	}
	for i := 0; i < nOut; i++ {
		pin := r.must(r.s.NewSubobject(root, "Pins"))
		r.set(pin, "InOut", domain.Sym("OUT"))
		r.set(pin, "PinId", domain.Int(id))
		id++
	}
	iface := r.must(r.s.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterfaceI, iface, root); err != nil {
		r.t.Fatal(err)
	}
	return iface
}

// behavior returns (creating on demand) a master implementation with the
// named function's truth table and the given delay.
func (r *rig) behavior(fn string, nIn int, delay int64) domain.Surrogate {
	r.t.Helper()
	key := fn
	if impl, ok := r.behaviors[key]; ok {
		return impl
	}
	iface := r.iface(nIn, 1)
	impl := r.must(r.s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		r.t.Fatal(err)
	}
	table, err := Table(fn, nIn)
	if err != nil {
		r.t.Fatal(err)
	}
	r.set(impl, "Function", table)
	r.set(impl, "TimeBehavior", domain.Int(delay))
	r.behaviors[key] = impl
	return impl
}

// composite builds a composite implementation with external pins and
// subgates. Each subgate gets its own fresh interface instance (distinct
// pins) and a function name; the returned resolver maps usage interfaces
// to the master behavior implementations.
type compositeSpec struct {
	nIn, nOut int
	gates     []gateSpec
	// wires: each entry is a pair of pin handles (see pinHandle).
	wires [][2]pinHandle
}

// pinHandle addresses a pin: gate < 0 means an external pin of the
// composite; index counts pins of that owner in PinId order (inputs
// first).
type pinHandle struct {
	gate  int
	index int
}

type gateSpec struct {
	fn    string
	nIn   int
	delay int64
}

func (r *rig) composite(spec compositeSpec) (domain.Surrogate, Resolver) {
	r.t.Helper()
	ownIface := r.iface(spec.nIn, spec.nOut)
	impl := r.must(r.s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, impl, ownIface); err != nil {
		r.t.Fatal(err)
	}
	usageToBehavior := make(map[domain.Surrogate]domain.Surrogate)
	var gatePins [][]domain.Surrogate
	for _, g := range spec.gates {
		usage := r.iface(g.nIn, 1)
		sg := r.must(r.s.NewSubobject(impl, "SubGates"))
		if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, sg, usage); err != nil {
			r.t.Fatal(err)
		}
		usageToBehavior[usage] = r.behavior(g.fn, g.nIn, g.delay)
		pins, err := r.s.Members(sg, "Pins")
		if err != nil {
			r.t.Fatal(err)
		}
		gatePins = append(gatePins, pins)
	}
	extPins, err := r.s.Members(impl, "Pins")
	if err != nil {
		r.t.Fatal(err)
	}
	resolvePin := func(h pinHandle) domain.Surrogate {
		if h.gate < 0 {
			return extPins[h.index]
		}
		return gatePins[h.gate][h.index]
	}
	for _, w := range spec.wires {
		if _, err := r.s.RelateIn(impl, "Wires", object.Participants{
			"Pin1": domain.Ref(resolvePin(w[0])),
			"Pin2": domain.Ref(resolvePin(w[1])),
		}); err != nil {
			r.t.Fatal(err)
		}
	}
	resolver := func(iface domain.Surrogate) (domain.Surrogate, error) {
		impl, ok := usageToBehavior[iface]
		if !ok {
			return 0, errors.New("unknown usage interface")
		}
		return impl, nil
	}
	return impl, resolver
}

func ext(i int) pinHandle     { return pinHandle{gate: -1, index: i} }
func gpin(g, i int) pinHandle { return pinHandle{gate: g, index: i} }
func bools(bs ...bool) []bool { return bs }
func TestTableGeneration(t *testing.T) {
	cases := []struct {
		fn   string
		nIn  int
		want []bool // rows in binary order
	}{
		{"AND", 2, bools(false, false, false, true)},
		{"OR", 2, bools(false, true, true, true)},
		{"NAND", 2, bools(true, true, true, false)},
		{"NOR", 2, bools(true, false, false, false)},
		{"XOR", 2, bools(false, true, true, false)},
		{"NOR", 1, bools(true, false)}, // NOT
	}
	for _, c := range cases {
		m, err := Table(c.fn, c.nIn)
		if err != nil {
			t.Fatalf("Table(%s): %v", c.fn, err)
		}
		for r, want := range c.want {
			if got := bool(m.At(r, 0).(domain.Bool)); got != want {
				t.Errorf("%s row %d = %v, want %v", c.fn, r, got, want)
			}
		}
	}
	if _, err := Table("XNOR", 2); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestSingleNANDGate(t *testing.T) {
	r := newRig(t)
	impl, resolver := r.composite(compositeSpec{
		nIn: 2, nOut: 1,
		gates: []gateSpec{{fn: "NAND", nIn: 2, delay: 3}},
		wires: [][2]pinHandle{
			{ext(0), gpin(0, 0)},
			{ext(1), gpin(0, 1)},
			{gpin(0, 2), ext(2)},
		},
	})
	c, err := Compile(r.s, impl, resolver)
	if err != nil {
		t.Fatal(err)
	}
	if c.Inputs() != 2 || c.Outputs() != 1 || c.Gates() != 1 {
		t.Fatalf("shape: in=%d out=%d gates=%d", c.Inputs(), c.Outputs(), c.Gates())
	}
	tt, err := c.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	want := bools(true, true, true, false)
	for r, row := range tt {
		if row[0] != want[r] {
			t.Errorf("row %d = %v, want %v", r, row[0], want[r])
		}
	}
	res, err := c.Eval(bools(true, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay != 3 {
		t.Errorf("delay = %d, want 3", res.Delay)
	}
}

func TestHalfAdder(t *testing.T) {
	// sum = XOR(a, b); carry = AND(a, b).
	r := newRig(t)
	impl, resolver := r.composite(compositeSpec{
		nIn: 2, nOut: 2,
		gates: []gateSpec{
			{fn: "XOR", nIn: 2, delay: 4},
			{fn: "AND", nIn: 2, delay: 2},
		},
		wires: [][2]pinHandle{
			{ext(0), gpin(0, 0)}, {ext(0), gpin(1, 0)},
			{ext(1), gpin(0, 1)}, {ext(1), gpin(1, 1)},
			{gpin(0, 2), ext(2)}, // sum
			{gpin(1, 2), ext(3)}, // carry
		},
	})
	c, err := Compile(r.s, impl, resolver)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b, sum, carry bool
	}{
		{false, false, false, false},
		{true, false, true, false},
		{false, true, true, false},
		{true, true, false, true},
	}
	for _, tc := range cases {
		res, err := c.Eval(bools(tc.a, tc.b))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] != tc.sum || res.Outputs[1] != tc.carry {
			t.Errorf("%v+%v: sum=%v carry=%v", tc.a, tc.b, res.Outputs[0], res.Outputs[1])
		}
		// Critical path is the slower XOR.
		if res.Delay != 4 {
			t.Errorf("delay = %d, want 4", res.Delay)
		}
	}
}

func TestTwoStageDelayAccumulates(t *testing.T) {
	// NAND feeding NAND (inputs tied): a buffer with delay 3+3.
	r := newRig(t)
	impl, resolver := r.composite(compositeSpec{
		nIn: 1, nOut: 1,
		gates: []gateSpec{
			{fn: "NAND", nIn: 2, delay: 3},
			{fn: "NAND", nIn: 2, delay: 3},
		},
		wires: [][2]pinHandle{
			{ext(0), gpin(0, 0)}, {ext(0), gpin(0, 1)},
			{gpin(0, 2), gpin(1, 0)}, {gpin(0, 2), gpin(1, 1)},
			{gpin(1, 2), ext(1)},
		},
	})
	c, err := Compile(r.s, impl, resolver)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Eval(bools(true))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs[0] {
		t.Error("double inversion should restore the input")
	}
	if res.Delay != 6 {
		t.Errorf("delay = %d, want 6", res.Delay)
	}
}

func TestSRLatchSettles(t *testing.T) {
	// Cross-coupled NORs: Q = NOR(R, notQ), notQ = NOR(S, Q).
	r := newRig(t)
	impl, resolver := r.composite(compositeSpec{
		nIn: 2, nOut: 2, // S, R in; Q, notQ out
		gates: []gateSpec{
			{fn: "NOR", nIn: 2, delay: 1}, // drives Q
			{fn: "NOR", nIn: 2, delay: 1}, // drives notQ
		},
		wires: [][2]pinHandle{
			{ext(1), gpin(0, 0)},     // R -> gate0
			{gpin(1, 2), gpin(0, 1)}, // notQ -> gate0
			{ext(0), gpin(1, 0)},     // S -> gate1
			{gpin(0, 2), gpin(1, 1)}, // Q -> gate1
			{gpin(0, 2), ext(2)},     // Q out
			{gpin(1, 2), ext(3)},     // notQ out
		},
	})
	c, err := Compile(r.s, impl, resolver)
	if err != nil {
		t.Fatal(err)
	}
	// Set: S=1, R=0 -> Q=1.
	res, err := c.Eval(bools(true, false))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs[0] || res.Outputs[1] {
		t.Errorf("set: Q=%v notQ=%v", res.Outputs[0], res.Outputs[1])
	}
	if res.Iterations < 2 {
		t.Errorf("feedback should need iteration, got %d", res.Iterations)
	}
	// Reset: S=0, R=1 -> Q=0.
	res, err = c.Eval(bools(false, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] || !res.Outputs[1] {
		t.Errorf("reset: Q=%v notQ=%v", res.Outputs[0], res.Outputs[1])
	}
}

func TestOscillatorDetected(t *testing.T) {
	// A NOT gate feeding itself never settles.
	r := newRig(t)
	impl, resolver := r.composite(compositeSpec{
		nIn: 0, nOut: 1,
		gates: []gateSpec{{fn: "NOR", nIn: 1, delay: 1}},
		wires: [][2]pinHandle{
			{gpin(0, 1), gpin(0, 0)}, // out -> in
			{gpin(0, 1), ext(0)},
		},
	})
	c, err := Compile(r.s, impl, resolver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Eval(nil); !errors.Is(err, ErrUnstable) {
		t.Errorf("oscillator: %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	r := newRig(t)

	// Shared interface pins between two components are ambiguous.
	shared := r.iface(2, 1)
	impl := r.must(r.s.NewObject(paperschema.TypeGateImplementation, ""))
	own := r.iface(2, 1)
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, impl, own); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sg := r.must(r.s.NewSubobject(impl, "SubGates"))
		if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, sg, shared); err != nil {
			t.Fatal(err)
		}
	}
	behavior := r.behavior("NAND", 2, 1)
	resolver := func(domain.Surrogate) (domain.Surrogate, error) { return behavior, nil }
	if _, err := Compile(r.s, impl, resolver); !errors.Is(err, ErrSharedPins) {
		t.Errorf("shared pins: %v", err)
	}

	// Missing behaviour (nil resolver and zero implementations).
	impl2, _ := r.composite(compositeSpec{
		nIn: 1, nOut: 1,
		gates: []gateSpec{{fn: "NAND", nIn: 2, delay: 1}},
	})
	if _, err := Compile(r.s, impl2, func(domain.Surrogate) (domain.Surrogate, error) {
		return 0, errors.New("nope")
	}); err == nil {
		t.Error("resolver error should propagate")
	}

	// Table shape mismatch: 1-input table on a 2-input component.
	badBehavior := r.behaviors["NAND"]
	one, _ := Table("NOR", 1)
	if err := r.s.SetAttr(badBehavior, "Function", one); err != nil {
		t.Fatal(err)
	}
	impl3, resolver3 := r.composite(compositeSpec{
		nIn: 2, nOut: 1,
		gates: []gateSpec{{fn: "NAND", nIn: 2, delay: 1}},
	})
	_ = resolver3
	if _, err := Compile(r.s, impl3, func(domain.Surrogate) (domain.Surrogate, error) {
		return badBehavior, nil
	}); !errors.Is(err, ErrBadTable) {
		t.Errorf("bad table: %v", err)
	}

	// Wrong arity at Eval time.
	impl4, resolver4 := r.composite(compositeSpec{
		nIn: 2, nOut: 1,
		gates: []gateSpec{{fn: "XOR", nIn: 2, delay: 1}},
		wires: [][2]pinHandle{
			{ext(0), gpin(0, 0)}, {ext(1), gpin(0, 1)}, {gpin(0, 2), ext(2)},
		},
	})
	c4, err := Compile(r.s, impl4, resolver4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c4.Eval(bools(true)); !errors.Is(err, ErrArity) {
		t.Errorf("arity: %v", err)
	}
}

func TestDefaultResolver(t *testing.T) {
	// With exactly one implementation bound to the usage interface, nil
	// resolver works.
	r := newRig(t)
	usage := r.iface(2, 1)
	behavior := r.must(r.s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, behavior, usage); err != nil {
		t.Fatal(err)
	}
	table, _ := Table("AND", 2)
	r.set(behavior, "Function", table)
	r.set(behavior, "TimeBehavior", domain.Int(2))

	own := r.iface(2, 1)
	impl := r.must(r.s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, impl, own); err != nil {
		t.Fatal(err)
	}
	sg := r.must(r.s.NewSubobject(impl, "SubGates"))
	// Bind the component to a *fresh* interface so pins are distinct, and
	// bind the behavior to the same one so the default resolver finds it.
	usage2 := r.iface(2, 1)
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, sg, usage2); err != nil {
		t.Fatal(err)
	}
	behavior2 := r.must(r.s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := r.s.Bind(paperschema.RelAllOfGateInterface, behavior2, usage2); err != nil {
		t.Fatal(err)
	}
	r.set(behavior2, "Function", table)
	r.set(behavior2, "TimeBehavior", domain.Int(2))

	extPins, _ := r.s.Members(impl, "Pins")
	sgPins, _ := r.s.Members(sg, "Pins")
	for _, pair := range [][2]domain.Surrogate{
		{extPins[0], sgPins[0]}, {extPins[1], sgPins[1]}, {sgPins[2], extPins[2]},
	} {
		if _, err := r.s.RelateIn(impl, "Wires", object.Participants{
			"Pin1": domain.Ref(pair[0]), "Pin2": domain.Ref(pair[1]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Compile(r.s, impl, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Eval(bools(true, true))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs[0] {
		t.Error("AND(1,1) should be 1")
	}
}
