// Package sim is a small digital-logic simulator over the object model —
// the kind of application §4 of the paper motivates when it argues that
// "some applications may require more information of a chip to integrate
// it as a component into a composite object (for instance, time
// information for time simulations)".
//
// A composite gate (GateImplementation) is compiled into a Circuit: its
// external pins become circuit inputs/outputs, each SubGates component is
// resolved — via the caller-supplied Resolver, typically backed by the
// version manager's selection policies — to a concrete implementation
// whose Function matrix provides the truth table and whose TimeBehavior
// provides the gate delay; Wires become nets.
//
// The compiler requires each component to own distinct pin objects (i.e.
// each subgate bound to its own interface instance). If two components
// share one interface, its pins are shared objects and wire endpoints
// become ambiguous — a genuine consequence of the paper's value-
// inheritance model that the compiler reports as ErrSharedPins.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"cadcam/internal/domain"
	"cadcam/internal/object"
)

// Errors returned by the compiler and evaluator.
var (
	// ErrSharedPins reports two components sharing one interface's pins.
	ErrSharedPins = errors.New("sim: components share interface pins; bind each subgate to its own interface instance")
	// ErrNoBehavior reports a component whose resolved implementation has
	// no Function matrix.
	ErrNoBehavior = errors.New("sim: component has no Function matrix")
	// ErrBadTable reports a Function matrix whose shape does not match
	// the pin count (rows must be 2^inputs, columns the output count).
	ErrBadTable = errors.New("sim: Function matrix shape does not match pins")
	// ErrUnstable reports a feedback circuit that did not settle.
	ErrUnstable = errors.New("sim: circuit did not stabilize (oscillation)")
	// ErrArity reports an Eval call with the wrong input count.
	ErrArity = errors.New("sim: wrong number of inputs")
)

// Resolver chooses the concrete implementation simulating a component
// interface — the version-selection hook (§6: top-down, bottom-up or
// environment policies all fit this signature).
type Resolver func(iface domain.Surrogate) (domain.Surrogate, error)

// gate is one compiled component.
type gate struct {
	ins   []int // net ids in PinId order
	outs  []int
	table *domain.Matrix
	delay int64
}

// Circuit is a compiled, evaluable netlist.
type Circuit struct {
	nIn, nOut int
	inNets    []int // net id per external input (PinId order)
	outNets   []int
	gates     []gate
	netCount  int
}

// Inputs reports the number of external inputs.
func (c *Circuit) Inputs() int { return c.nIn }

// Outputs reports the number of external outputs.
func (c *Circuit) Outputs() int { return c.nOut }

// Gates reports the number of components.
func (c *Circuit) Gates() int { return len(c.gates) }

// Compile builds a circuit from a composite implementation. The resolver
// maps each component's interface to the implementation providing its
// behaviour; pass nil to require every component interface to have
// exactly one bound implementation in the store.
func Compile(s *object.Store, impl domain.Surrogate, resolve Resolver) (*Circuit, error) {
	if resolve == nil {
		resolve = defaultResolver(s)
	}
	c := &Circuit{}
	netOf := make(map[domain.Surrogate]int) // pin -> net (before wire union)
	pinOwner := make(map[domain.Surrogate]domain.Surrogate)
	newNet := func() int {
		id := c.netCount
		c.netCount++
		return id
	}
	claimPins := func(owner domain.Surrogate, pins []domain.Surrogate) error {
		for _, p := range pins {
			if prev, taken := pinOwner[p]; taken && prev != owner {
				return fmt.Errorf("%w: pin %s used by %s and %s", ErrSharedPins, p, prev, owner)
			}
			pinOwner[p] = owner
			if _, ok := netOf[p]; !ok {
				netOf[p] = newNet()
			}
		}
		return nil
	}

	// External pins.
	extIn, extOut, err := pinsByDirection(s, impl)
	if err != nil {
		return nil, err
	}
	if err := claimPins(impl, append(append([]domain.Surrogate(nil), extIn...), extOut...)); err != nil {
		return nil, err
	}

	// Components.
	subs, err := s.Members(impl, "SubGates")
	if err != nil {
		return nil, err
	}
	type compiledGate struct {
		ins, outs []domain.Surrogate
		table     *domain.Matrix
		delay     int64
	}
	var comps []compiledGate
	for _, sg := range subs {
		ins, outs, err := pinsByDirection(s, sg)
		if err != nil {
			return nil, err
		}
		if err := claimPins(sg, append(append([]domain.Surrogate(nil), ins...), outs...)); err != nil {
			return nil, err
		}
		iface := componentInterface(s, sg)
		if iface == 0 {
			return nil, fmt.Errorf("sim: component %s is not bound to an interface", sg)
		}
		behavior, err := resolve(iface)
		if err != nil {
			return nil, fmt.Errorf("sim: resolving component %s: %w", sg, err)
		}
		table, delay, err := behaviorOf(s, behavior)
		if err != nil {
			return nil, fmt.Errorf("sim: component %s: %w", sg, err)
		}
		if table.Rows() != 1<<len(ins) || table.Cols() != len(outs) {
			return nil, fmt.Errorf("%w: %dx%d table for %d inputs, %d outputs",
				ErrBadTable, table.Rows(), table.Cols(), len(ins), len(outs))
		}
		comps = append(comps, compiledGate{ins: ins, outs: outs, table: table, delay: delay})
	}

	// Wires merge nets (union-find).
	uf := newUnionFind(c.netCount)
	wires, err := s.Members(impl, "Wires")
	if err != nil {
		return nil, err
	}
	for _, w := range wires {
		p1, err := pinRef(s, w, "Pin1")
		if err != nil {
			return nil, err
		}
		p2, err := pinRef(s, w, "Pin2")
		if err != nil {
			return nil, err
		}
		n1, ok1 := netOf[p1]
		n2, ok2 := netOf[p2]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sim: wire %s references a pin outside the circuit", w)
		}
		uf.union(n1, n2)
	}
	canon := func(p domain.Surrogate) int { return uf.find(netOf[p]) }

	for _, p := range extIn {
		c.inNets = append(c.inNets, canon(p))
	}
	for _, p := range extOut {
		c.outNets = append(c.outNets, canon(p))
	}
	for _, cg := range comps {
		g := gate{table: cg.table, delay: cg.delay}
		for _, p := range cg.ins {
			g.ins = append(g.ins, canon(p))
		}
		for _, p := range cg.outs {
			g.outs = append(g.outs, canon(p))
		}
		c.gates = append(c.gates, g)
	}
	c.nIn, c.nOut = len(extIn), len(extOut)
	return c, nil
}

// Result carries one evaluation's outputs and timing.
type Result struct {
	Outputs []bool
	// Delay is the settled critical-path delay in TimeBehavior units.
	Delay int64
	// Iterations is the number of sweeps until the netlist settled
	// (1 for purely feed-forward circuits evaluated in one pass order).
	Iterations int
}

// maxSettleIterations bounds fixed-point iteration for feedback circuits.
const maxSettleIterations = 64

// Eval evaluates the circuit for one input vector (ordered by the
// external IN pins' PinId). Feedback circuits (latches) are iterated to a
// fixed point; oscillating circuits return ErrUnstable.
//
// Delay semantics: for feed-forward circuits, Delay is the exact critical
// path in TimeBehavior units; for feedback circuits (whose combinational
// delay is unbounded by definition), arrival propagation is capped at one
// sweep per gate, yielding the settle-time approximation.
func (c *Circuit) Eval(inputs []bool) (*Result, error) {
	if len(inputs) != c.nIn {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrArity, len(inputs), c.nIn)
	}
	value := make([]bool, c.netCount)
	for i, in := range inputs {
		value[c.inNets[i]] = in
	}
	// Phase 1: values to a fixed point (Gauss-Seidel sweeps).
	iter := 0
	for ; iter < maxSettleIterations; iter++ {
		changed := false
		for _, g := range c.gates {
			row := 0
			for bit, net := range g.ins {
				if value[net] {
					row |= 1 << bit
				}
			}
			for col, net := range g.outs {
				out := bool(g.table.At(row, col).(domain.Bool))
				if value[net] != out {
					value[net] = out
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	if iter == maxSettleIterations {
		return nil, ErrUnstable
	}
	// Phase 2: arrival times, bounded by one sweep per gate (exact for
	// feed-forward topologies regardless of gate order).
	arrival := make([]int64, c.netCount)
	for sweep := 0; sweep <= len(c.gates); sweep++ {
		changed := false
		for _, g := range c.gates {
			var inArrival int64
			for _, net := range g.ins {
				if arrival[net] > inArrival {
					inArrival = arrival[net]
				}
			}
			outArrival := inArrival + g.delay
			for _, net := range g.outs {
				if outArrival > arrival[net] {
					arrival[net] = outArrival
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	res := &Result{Iterations: iter + 1}
	for _, net := range c.outNets {
		res.Outputs = append(res.Outputs, value[net])
		if arrival[net] > res.Delay {
			res.Delay = arrival[net]
		}
	}
	return res, nil
}

// TruthTable prints the full truth table of the circuit; handy for tests
// and the example.
func (c *Circuit) TruthTable() ([][]bool, error) {
	rows := 1 << c.nIn
	out := make([][]bool, rows)
	for r := 0; r < rows; r++ {
		inputs := make([]bool, c.nIn)
		for b := 0; b < c.nIn; b++ {
			inputs[b] = r&(1<<b) != 0
		}
		res, err := c.Eval(inputs)
		if err != nil {
			return nil, err
		}
		out[r] = res.Outputs
	}
	return out, nil
}

// ---- helpers ----

// pinsByDirection returns an object's pins split by InOut, each group
// ordered by PinId.
func pinsByDirection(s *object.Store, owner domain.Surrogate) (ins, outs []domain.Surrogate, err error) {
	pins, err := s.Members(owner, "Pins")
	if err != nil {
		return nil, nil, err
	}
	type pin struct {
		sur domain.Surrogate
		id  int64
		in  bool
	}
	list := make([]pin, 0, len(pins))
	for _, p := range pins {
		dir, err := s.GetAttr(p, "InOut")
		if err != nil {
			return nil, nil, err
		}
		idV, err := s.GetAttr(p, "PinId")
		if err != nil {
			return nil, nil, err
		}
		id, _ := domain.AsInt(idV)
		list = append(list, pin{sur: p, id: id, in: dir.Equal(domain.Sym("IN"))})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	for _, p := range list {
		if p.in {
			ins = append(ins, p.sur)
		} else {
			outs = append(outs, p.sur)
		}
	}
	return ins, outs, nil
}

// componentInterface finds the interface a component inherits its pins
// from (any binding whose relationship carries Pins).
func componentInterface(s *object.Store, sg domain.Surrogate) domain.Surrogate {
	for _, b := range s.BindingsOfInheritor(sg) {
		if b.Rel.Inherits("Pins") {
			return b.Transmitter
		}
	}
	return 0
}

// behaviorOf reads the Function matrix and TimeBehavior of an
// implementation.
func behaviorOf(s *object.Store, impl domain.Surrogate) (*domain.Matrix, int64, error) {
	fnV, err := s.GetAttr(impl, "Function")
	if err != nil {
		return nil, 0, err
	}
	table, ok := fnV.(*domain.Matrix)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoBehavior, impl)
	}
	tbV, err := s.GetAttr(impl, "TimeBehavior")
	if err != nil {
		return nil, 0, err
	}
	delay, _ := domain.AsInt(tbV)
	return table, delay, nil
}

// pinRef reads a wire endpoint.
func pinRef(s *object.Store, wire domain.Surrogate, role string) (domain.Surrogate, error) {
	v, err := s.Participant(wire, role)
	if err != nil {
		return 0, err
	}
	ref, ok := v.(domain.Ref)
	if !ok {
		return 0, fmt.Errorf("sim: wire %s role %s is not a reference", wire, role)
	}
	return domain.Surrogate(ref), nil
}

// defaultResolver picks the unique implementation bound to an interface.
func defaultResolver(s *object.Store) Resolver {
	return func(iface domain.Surrogate) (domain.Surrogate, error) {
		var impls []domain.Surrogate
		for _, b := range s.BindingsOfTransmitter(iface) {
			o, err := s.Get(b.Inheritor)
			if err != nil {
				continue
			}
			// Implementations carry behaviour; component subobjects do not.
			if v, err := s.GetAttr(b.Inheritor, "Function"); err == nil && !domain.IsNull(v) {
				impls = append(impls, o.Surrogate())
			}
		}
		if len(impls) != 1 {
			return 0, fmt.Errorf("sim: interface %s has %d candidate implementations; supply a Resolver", iface, len(impls))
		}
		return impls[0], nil
	}
}

// ---- union-find ----

type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// Tables for the paper's elementary gate functions, as Function matrices
// (rows indexed by the input bits, LSB = lowest PinId).
func Table(fn string, nIn int) (*domain.Matrix, error) {
	rows := 1 << nIn
	cells := make([]domain.Value, rows)
	for r := 0; r < rows; r++ {
		ones := 0
		for b := 0; b < nIn; b++ {
			if r&(1<<b) != 0 {
				ones++
			}
		}
		var out bool
		switch fn {
		case "AND":
			out = ones == nIn
		case "OR":
			out = ones > 0
		case "NAND":
			out = ones != nIn
		case "NOR":
			out = ones == 0
		case "XOR":
			out = ones%2 == 1
		default:
			return nil, fmt.Errorf("sim: unknown function %q", fn)
		}
		cells[r] = domain.Bool(out)
	}
	return domain.NewMatrix(rows, 1, cells...), nil
}
