package cadcam

// Facade-level query acceptance: Database.Query and a concurrently
// pinned SnapshotView.Query agree while writers run (run under -race),
// inherited values are visible through the index, and index definitions
// survive WAL replay and checkpointed restarts.

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cadcam/internal/paperschema"
)

func sameSurSets(a, b []Surrogate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQueryFacade(t *testing.T) {
	db := memDB(t)
	defer db.Close()
	if err := db.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		t.Fatal(err)
	}
	var want []Surrogate
	for i := 0; i < 30; i++ {
		g, err := db.NewObject(paperschema.TypeSimpleGate, "gates")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetAttr(g, "Width", Int(int64(i%10))); err != nil {
			t.Fatal(err)
		}
		if i%10 == 3 {
			want = append(want, g)
		}
	}
	if err := db.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}
	if defs := db.Indexes(); len(defs) != 1 || defs[0].Name != "gates_w" {
		t.Fatalf("Indexes() = %v", defs)
	}
	got, err := db.Query("gates", "Width = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !sameSurSets(got, want) {
		t.Fatalf("Query = %v, want %v", got, want)
	}
	text, err := db.Explain("gates", "Width = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "index scan") || !strings.Contains(text, "gates_w") {
		t.Fatalf("Explain = %q", text)
	}
	plan, err := db.Plan("gates", "Width = 3")
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstCandidates != len(want) {
		t.Fatalf("EstCandidates = %d, want %d", plan.EstCandidates, len(want))
	}
	if err := db.DropIndex("gates_w"); err != nil {
		t.Fatal(err)
	}
	got2, err := db.Query("gates", "Width = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !sameSurSets(got2, want) {
		t.Fatalf("post-drop Query = %v, want %v", got2, want)
	}
}

// TestQueryConcurrentSnapshotAgreement is the headline acceptance check:
// while writers mutate predicate-neutral state under load, the live
// Database and a concurrently pinned SnapshotView answer the same
// indexed query identically, inherited values included.
func TestQueryConcurrentSnapshotAgreement(t *testing.T) {
	db := memDB(t)
	defer db.Close()
	if err := db.DefineClass("impls", paperschema.TypeGateImplementation); err != nil {
		t.Fatal(err)
	}
	iface, err := db.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}
	// The queried value is inherited: impls get Length from the interface.
	if err := db.SetAttr(iface, "Length", Int(8)); err != nil {
		t.Fatal(err)
	}
	var want []Surrogate
	for i := 0; i < 64; i++ {
		im, err := db.NewObject(paperschema.TypeGateImplementation, "impls")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Bind(paperschema.RelAllOfGateInterface, im, iface); err != nil {
			t.Fatal(err)
		}
		want = append(want, im)
	}
	if err := db.CreateIndex("impls_len", "impls", "Length"); err != nil {
		t.Fatal(err)
	}

	// Writers churn attributes the predicate never reads, plus unpooled
	// objects, so the correct answer stays fixed while the store moves.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				sur := want[(w*8+i)%len(want)]
				_ = db.SetAttr(sur, "TimeBehavior", Str("t"))
				if g, err := db.NewObject(paperschema.TypeSimpleGate, ""); err == nil {
					_ = db.SetAttr(g, "Width", Int(int64(i%50)))
					_ = db.Delete(g)
				}
			}
		}(w)
	}

	const where = "Length = 8"
	for round := 0; round < 40; round++ {
		view := db.SnapshotView()
		live, err := db.Query("impls", where)
		if err != nil {
			t.Fatal(err)
		}
		pinned, err := view.Query("impls", where)
		if err != nil {
			t.Fatal(err)
		}
		view.Release()
		if !sameSurSets(live, want) {
			t.Fatalf("round %d: live = %v, want %v", round, live, want)
		}
		if !sameSurSets(pinned, want) {
			t.Fatalf("round %d: pinned = %v, want %v", round, pinned, want)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestQueryIndexSurvivesRestart reopens a disk database twice — once
// replaying the WAL tail, once from a checkpoint — and expects the index
// definition back and its postings rebuilt both times.
func TestQueryIndexSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	if err := db.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		t.Fatal(err)
	}
	var want []Surrogate
	for i := 0; i < 12; i++ {
		g, err := db.NewObject(paperschema.TypeSimpleGate, "gates")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetAttr(g, "Width", Int(int64(i%4))); err != nil {
			t.Fatal(err)
		}
		if i%4 == 1 {
			want = append(want, g)
		}
	}
	if err := db.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen #1: the index definition comes back off the WAL tail.
	db = diskDB(t, dir)
	if defs := db.Indexes(); len(defs) != 1 || defs[0].Name != "gates_w" {
		t.Fatalf("after WAL replay: Indexes() = %v", defs)
	}
	got, err := db.Query("gates", "Width = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !sameSurSets(got, want) {
		t.Fatalf("after WAL replay: Query = %v, want %v", got, want)
	}
	if plan, err := db.Plan("gates", "Width = 1"); err != nil || plan.Index != "gates_w" {
		t.Fatalf("after WAL replay: plan = %+v, err %v", plan, err)
	}
	// Checkpoint, then reopen #2: the definition comes back off the
	// manifest's base state instead.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = diskDB(t, dir)
	defer db.Close()
	if defs := db.Indexes(); len(defs) != 1 || defs[0].Name != "gates_w" {
		t.Fatalf("after checkpoint: Indexes() = %v", defs)
	}
	got, err = db.Query("gates", "Width = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !sameSurSets(got, want) {
		t.Fatalf("after checkpoint: Query = %v, want %v", got, want)
	}
}
