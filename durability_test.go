package cadcam

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cadcam/internal/fault"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/storage"
)

// TestCrashRecoveryTornBatch proves the torn-batch atomicity rule at the
// database level: a group-commit batch frame torn by a crash is dropped
// whole, and replay stops cleanly at the last complete frame — the store
// state matches the pre-crash prefix exactly.
func TestCrashRecoveryTornBatch(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	_, iface, _ := buildGateScene(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-append a two-record batch frame to the journal, the way a
	// concurrent group commit would have written it.
	walPath := filepath.Join(dir, "wal-00000000.log")
	appendBatch := func(truncateTail int64) {
		t.Helper()
		log, _, err := storage.OpenLog(walPath)
		if err != nil {
			t.Fatal(err)
		}
		batch := [][]byte{
			(&oplog.Op{Kind: oplog.KindSetAttr, Sur: iface, Name: "Width", Value: Int(10)}).Encode(),
			(&oplog.Op{Kind: oplog.KindSetAttr, Sur: iface, Name: "Width", Value: Int(11)}).Encode(),
		}
		if err := log.AppendBatch(batch, true); err != nil {
			t.Fatal(err)
		}
		size := log.Size()
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		if truncateTail > 0 {
			if err := os.Truncate(walPath, size-truncateTail); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Intact batch: both records replay, last write wins.
	appendBatch(0)
	db2 := diskDB(t, dir)
	if v, _ := db2.GetAttr(iface, "Width"); !v.Equal(Int(11)) {
		t.Errorf("intact batch should replay fully, Width = %v", v)
	}
	// Remove the batch again so the torn case starts from the same prefix.
	if err := db2.SetAttr(iface, "Width", NullValue); err != nil {
		t.Fatal(err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn batch: the crash clipped the frame mid-payload. The whole
	// batch must vanish; everything before it survives.
	walPath = filepath.Join(dir, "wal-00000001.log")
	appendBatch(3)
	db3 := diskDB(t, dir)
	defer db3.Close()
	if v, _ := db3.GetAttr(iface, "Width"); !v.Equal(NullValue) {
		t.Errorf("torn batch must be dropped whole, Width = %v", v)
	}
	if v, _ := db3.GetAttr(iface, "Length"); !v.Equal(Int(4)) {
		t.Errorf("pre-crash prefix must survive, Length = %v", v)
	}
}

// TestJournalErrorFailsFast: once the pipeline is poisoned, every
// subsequent facade mutation fails immediately with the sticky error —
// durability loss cannot go unnoticed by a caller that checks errors.
func TestJournalErrorFailsFast(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	defer db.Close()
	_, iface, _ := buildGateScene(t, db)

	boom := errors.New("disk on fire")
	db.committer.Fail(boom)

	if err := db.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
	if err := db.SetAttr(iface, "Length", Int(9)); !errors.Is(err, boom) {
		t.Errorf("SetAttr = %v, want sticky error", err)
	}
	if _, err := db.NewObject(paperschema.TypePin, ""); !errors.Is(err, boom) {
		t.Errorf("NewObject = %v, want sticky error", err)
	}
	if err := db.DefineDesign("D", iface); !errors.Is(err, boom) {
		t.Errorf("DefineDesign = %v, want sticky error", err)
	}
	// The fail-fast check precedes the store call: the rejected write
	// must not have mutated the in-memory state either.
	if v, _ := db.GetAttr(iface, "Length"); !v.Equal(Int(4)) {
		t.Errorf("rejected write leaked into store: Length = %v", v)
	}
	// Transactional statements hit the same barrier.
	tx := db.Begin("")
	if err := tx.SetAttr(iface, "Length", Int(8)); !errors.Is(err, boom) {
		t.Errorf("txn SetAttr = %v, want sticky error", err)
	}
	_ = tx.Abort()
}

// TestSyncEverySemantics pins the one documented SyncEvery rule:
// 0 → cadence 1 (durable default), n ≥ 1 → cadence n, n < 0 → never on
// append; DurabilityAuto derives the wait mode from the cadence.
func TestSyncEverySemantics(t *testing.T) {
	cases := []struct {
		opts    Options
		cadence int
		durable bool
	}{
		{Options{}, 1, true},
		{Options{SyncEvery: 1}, 1, true},
		{Options{SyncEvery: 8}, 8, false},
		{Options{SyncEvery: -1}, 0, false},
		{Options{SyncEvery: -1, Durability: DurabilitySync}, 0, true},
		{Options{SyncEvery: 8, Durability: DurabilitySync}, 8, true},
		{Options{Durability: DurabilityAsync}, 1, false},
	}
	for i, c := range cases {
		if got := c.opts.syncCadence(); got != c.cadence {
			t.Errorf("case %d: cadence = %d, want %d", i, got, c.cadence)
		}
		if got := c.opts.durable(); got != c.durable {
			t.Errorf("case %d: durable = %v, want %v", i, got, c.durable)
		}
	}

	// Behavior: SyncEvery < 0 never fsyncs on append, but Close still
	// lands every record.
	dir := t.TempDir()
	db, err := Open(paperschema.MustGates(), Options{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, iface, _ := buildGateScene(t, db)
	if got := db.Stats().WAL.Syncs; got != 0 {
		t.Errorf("SyncEvery<0 issued %d fsyncs on append", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	if v, _ := db2.GetAttr(iface, "Length"); !v.Equal(Int(4)) {
		t.Errorf("Close must land unsynced records, Length = %v", v)
	}
}

// TestConcurrentDurableWritersVsCheckpoint races durable writers against
// repeated checkpoints (run under -race in CI): no record may be lost or
// double-applied across the epoch swaps.
func TestConcurrentDurableWritersVsCheckpoint(t *testing.T) {
	const writers, opsEach, checkpoints = 4, 30, 8
	dir := t.TempDir()
	db, err := Open(paperschema.MustGates(), Options{Dir: dir, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	pins := make([]Surrogate, writers)
	for i := range pins {
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			t.Fatal(err)
		}
		pins[i] = pin
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				if err := db.SetAttr(pins[w], "PinId", Int(int64(i))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for c := 0; c < checkpoints; c++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", c, err)
		}
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	for w, pin := range pins {
		v, err := db2.GetAttr(pin, "PinId")
		if err != nil {
			t.Fatalf("writer %d pin: %v", w, err)
		}
		if !v.Equal(Int(opsEach - 1)) {
			t.Errorf("writer %d: PinId = %v, want %d", w, v, opsEach-1)
		}
	}
}

// TestDurableWriteStatsExposed: Stats().WAL reflects the pipeline (the
// cadbench smoke asserts the same through -json).
func TestDurableWriteStatsExposed(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(paperschema.MustGates(), Options{Dir: dir, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	buildGateScene(t, db)
	w := db.Stats().WAL
	if w.Batches == 0 || w.Records == 0 || w.Syncs == 0 {
		t.Errorf("WAL stats empty after mutations: %+v", w)
	}
	if w.Durable != w.Enqueued {
		t.Errorf("durable mode: durable=%d enqueued=%d should match after ack", w.Durable, w.Enqueued)
	}
}

// TestInjectedFsyncFailureAllShards drives the sticky-error path through
// a *real* injected fsync failure (the fault package, not a direct
// committer poke): after the first failed sync, a mutation against an
// object on every shard must fail fast with the injected error and leave
// no trace in memory — and reopening the directory must not surface any
// of the rejected values.
func TestInjectedFsyncFailureAllShards(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)

	// One pin per shard (surrogates are assigned round-robin dense, so
	// 2×DefaultShards objects cover every shard).
	const n = 32
	pins := make([]Surrogate, n)
	for i := range pins {
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetAttr(pin, "PinId", Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		pins[i] = pin
	}

	if err := fault.Arm("wal/sync-error=error(injected fsync failure)@1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	// The trigger write fails at its group-commit sync. Its bytes may or
	// may not have reached the file (write vs fsync), but the error must
	// surface here and poison the pipeline.
	if err := db.SetAttr(pins[0], "PinId", Int(1000)); err == nil {
		t.Fatal("mutation with failing fsync reported success")
	}
	sticky := db.Err()
	if sticky == nil {
		t.Fatal("journal error did not stick")
	}

	// Every shard now fails fast, before touching the store.
	for i, pin := range pins {
		err := db.SetAttr(pin, "PinId", Int(int64(2000+i)))
		if !errors.Is(err, sticky) {
			t.Fatalf("shard write %d: err = %v, want sticky %v", i, err, sticky)
		}
		v, gerr := db.GetAttr(pin, "PinId")
		if gerr != nil {
			t.Fatal(gerr)
		}
		if v.Equal(Int(int64(2000 + i))) {
			t.Fatalf("rejected write %d leaked into the in-memory store", i)
		}
	}
	_ = db.Close() // returns the sticky error; the directory is what counts

	fault.Reset()
	db2 := diskDB(t, dir)
	defer db2.Close()
	for i, pin := range pins {
		v, err := db2.GetAttr(pin, "PinId")
		if err != nil {
			t.Fatalf("recovered pin %d: %v", i, err)
		}
		if v.Equal(Int(int64(2000 + i))) {
			t.Fatalf("rejected write %d resurfaced after recovery", i)
		}
		if !v.Equal(Int(int64(i))) && !(i == 0 && v.Equal(Int(1000))) {
			t.Fatalf("recovered pin %d: PinId = %v, want %d (or the torn trigger value for pin 0)", i, v, i)
		}
	}
}
