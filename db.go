// Package cadcam is an object-oriented engineering database implementing
// the model of "Complex and Composite Objects in CAD/CAM Databases"
// (Wilkes, Klahold, Schlageter, 1988/89): complex objects with local
// subobjects and relationships, first-class relationship objects, and —
// the paper's central contribution — inheritance relationships between
// objects that carry attribute *values* from a transmitter to its
// inheritors with selective permeability, modelling both the
// interface/implementation relationship and composite objects with one
// mechanism.
//
// A Database bundles the schema catalog, the object store, the version
// manager, the transaction manager and the persistence layer:
//
//	cat, _ := ddl.Parse(schemaText)            // or a schema.Catalog built in Go
//	db, _ := cadcam.Open(cat, cadcam.Options{Dir: "data"})
//	defer db.Close()
//	iface, _ := db.NewObject("GateInterface", "")
//	impl, _ := db.NewObject("GateImplementation", "")
//	db.Bind("AllOf_GateInterface", impl, iface)
//
// Durability model: every mutation performed through the Database (or
// directly on its Store) is journaled in execution order to a
// CRC-framed, fsynced log and replayed deterministically on Open;
// Checkpoint compacts the journal into an atomic, incrementally
// maintained checkpoint (a manifest plus per-shard segments, re-encoding
// only shards that changed). Transactions (Begin) provide strict
// two-phase locking with portion locks, lock inheritance and expansion
// locking over the in-memory image; their journal records include
// compensating operations on abort, so the journal always reproduces the
// exact store state. Statement-level durability is the recovery unit — a
// transaction open at crash time is replayed up to its last statement;
// use Workspaces (checkout/checkin) for all-or-nothing publication of
// long design sessions.
package cadcam

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cadcam/internal/domain"
	"cadcam/internal/fault"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/repl"
	"cadcam/internal/schema"
	"cadcam/internal/storage"
	"cadcam/internal/txn"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// Checkpoint failpoints, in protocol order. A checkpoint rotates the
// journal first (under the store's exclusive lock), then encodes and
// writes segments, then commits the manifest, then garbage-collects:
//
//	fpCheckpointGap  — after the journal rotation, before anything is
//	                   written: recovery must replay the wal chain
//	                   (previous epoch's log plus the fresh one) on top
//	                   of the previous checkpoint.
//	fpSegmentWrite   — while writing a new segment file: the manifest
//	                   does not exist yet, so recovery must ignore the
//	                   orphan segments and use the previous checkpoint.
//	fpManifestSwap   — after every segment is durable, before the
//	                   manifest rename commits: same recovery obligation
//	                   as fpSegmentWrite.
//	fpSegmentGC      — after the manifest committed, before stale files
//	                   are removed: recovery must prefer the newest
//	                   manifest and clean up the leftovers.
var (
	fpCheckpointGap = fault.New("db/checkpoint-gap")
	fpSegmentWrite  = fault.New("db/segment-write")
	fpManifestSwap  = fault.New("db/manifest-swap")
	fpSegmentGC     = fault.New("db/segment-gc")
)

// ErrFrozenVersion reports a write to an object frozen by the version
// manager.
var ErrFrozenVersion = errors.New("cadcam: version is frozen")

// Durability selects when a mutation is acknowledged relative to journal
// I/O.
type Durability int

const (
	// DurabilityAuto derives the mode from SyncEvery: sync when the
	// effective cadence is 1 (the durable default), async otherwise.
	DurabilityAuto Durability = iota
	// DurabilitySync acknowledges a mutation only after the group-commit
	// batch carrying its journal record is written and fsynced.
	DurabilitySync
	// DurabilityAsync acknowledges a mutation once its record is queued;
	// the committer writes and fsyncs in the background per SyncEvery.
	DurabilityAsync
)

// Options configures Open.
type Options struct {
	// Dir is the persistence directory; "" opens an in-memory database.
	Dir string
	// SyncEvery controls the journal fsync cadence. One rule, applied
	// identically at Open, at every checkpoint epoch swap, and inside the
	// group-commit pipeline:
	//
	//	 0  (default) → cadence 1: every commit batch is fsynced
	//	 n ≥ 1        → fsync after at least n journaled records
	//	 n < 0        → never fsync on append (Close/Checkpoint still sync)
	SyncEvery int
	// Durability selects sync-per-batch (durable) vs async
	// acknowledgment; the default derives it from SyncEvery.
	Durability Durability
	// CheckpointEvery, when > 0, triggers an automatic checkpoint after
	// that many journaled operations.
	CheckpointEvery int
	// DeletePolicy is the transmitter delete policy (default
	// DeleteRestrict).
	DeletePolicy object.DeletePolicy
	// Shards is the object-store shard count (0 = default, currently 16).
	// Operations on objects in different shards take different locks;
	// snapshots are shard-agnostic, so a database written with one count
	// reopens cleanly with another (such a reopen merely re-encodes every
	// segment at the next checkpoint).
	Shards int
	// RecoveryWorkers bounds the goroutines recovery uses to decode
	// checkpoint segments, import objects and replay the journal tail
	// (0 = GOMAXPROCS, 1 = serial).
	RecoveryWorkers int
}

// syncCadence normalizes SyncEvery to the pipeline's fsync cadence:
// records per fsync, 0 meaning "never on append".
func (o Options) syncCadence() int {
	switch {
	case o.SyncEvery == 0:
		return 1
	case o.SyncEvery < 0:
		return 0
	default:
		return o.SyncEvery
	}
}

// durable reports whether mutations wait for their group-commit batch.
func (o Options) durable() bool {
	switch o.Durability {
	case DurabilitySync:
		return true
	case DurabilityAsync:
		return false
	default:
		return o.syncCadence() == 1
	}
}

// workers normalizes RecoveryWorkers.
func (o Options) workers() int {
	if o.RecoveryWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.RecoveryWorkers
}

// CheckpointStats counts incremental-checkpoint work since Open.
type CheckpointStats struct {
	// Checkpoints and Failures count completed and failed Checkpoint
	// calls (in-memory databases never count).
	Checkpoints uint64 `json:"checkpoints"`
	Failures    uint64 `json:"failures"`
	// SegmentsWritten and SegmentsSkipped count per-shard segment files
	// across all checkpoints: skipped shards were clean since their last
	// encoded segment and kept the old file.
	SegmentsWritten uint64 `json:"segments_written"`
	SegmentsSkipped uint64 `json:"segments_skipped"`
	// BytesEncoded is the total size of all encoded segment and manifest
	// payloads (before CRC framing).
	BytesEncoded uint64 `json:"bytes_encoded"`
	// LastError describes the most recent checkpoint failure; cleared by
	// the next successful checkpoint.
	LastError string `json:"last_error,omitempty"`
	// LockHoldNs is the wall time the last checkpoint held the store's
	// exclusive lock (journal rotation plus snapshot pin); MaxLockHoldNs
	// is the worst case since Open. Segment encoding happens off-lock on
	// an MVCC snapshot, so these measure the whole stop-the-world window.
	LockHoldNs    int64 `json:"lock_hold_ns"`
	MaxLockHoldNs int64 `json:"max_lock_hold_ns"`
}

// RecoveryStats describes the recovery work the last Open performed.
type RecoveryStats struct {
	// Segments is the number of checkpoint segment files decoded (0 for
	// a legacy single-snapshot directory or a fresh one).
	Segments int `json:"segments"`
	// DecodeNs is the wall time spent locating and decoding the
	// checkpoint state (manifest + segments, or legacy snapshot).
	DecodeNs int64 `json:"decode_ns"`
	// ReplayOps is the number of journal records replayed on top.
	ReplayOps int `json:"replay_ops"`
	// ReplayNs is the wall time of store import plus journal replay.
	ReplayNs int64 `json:"replay_ns"`
	// Workers is the parallelism recovery ran with.
	Workers int `json:"workers"`
}

// Database is one open CAD/CAM database.
type Database struct {
	cat      *schema.Catalog
	store    *object.Store
	versions *version.Manager
	txns     *txn.Manager

	// mu serializes version-manager mutations, checkpoints and Close
	// against each other. Store mutations do not take it (the store
	// serializes itself and journals under its own lock).
	mu sync.Mutex

	dir   string
	epoch uint64
	opts  Options

	// Incremental-checkpoint bookkeeping (guarded by mu). manifestEpoch
	// is the epoch of the last committed manifest; segEpochs[p] is the
	// epoch whose segment file currently describes shard p; ckptBaseline
	// holds each shard's dirty counter at that commit. ckptBaseline is
	// nil (forcing the next checkpoint to encode every shard) until a
	// manifest whose partition count matches the store's shard count has
	// been committed or recovered.
	manifestEpoch uint64
	segEpochs     []uint64
	ckptBaseline  []uint64

	// statMu guards the observability counters, which Stats readers poll
	// without taking mu (a checkpoint may be in progress).
	statMu    sync.Mutex
	ckptStats CheckpointStats
	recStats  RecoveryStats
	ckptErr   error

	// committer is the group-commit journal pipeline (nil in-memory).
	// Mutations enqueue their op under the store mutex — fixing the
	// deterministic replay order — and wait for durability outside it.
	committer *storage.Group

	// shipper lazily serves read replicas off the journal chain
	// (replica.go); nil until the first Shipper/AttachFollower call.
	replMu  sync.Mutex
	shipper *repl.Shipper

	opsSinceCheckpoint atomic.Int64
	closed             bool
}

// Open creates or recovers a database over a validated catalog.
func Open(cat *schema.Catalog, opts Options) (*Database, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	store, err := object.NewStoreShards(cat, opts.Shards)
	if err != nil {
		return nil, err
	}
	db := &Database{
		cat:      cat,
		store:    store,
		versions: version.NewManager(store),
		dir:      opts.Dir,
		opts:     opts,
	}
	// The policy option must be in force *before* replay: journaled Delete
	// ops were validated under it live, and re-validating them under the
	// default would reject a journal the database itself wrote. A policy
	// change journaled mid-run still replays on top, in order, exactly as
	// it happened live. No journal is attached yet, so the override itself
	// (an Open-time option, re-supplied on every Open) is not journaled.
	if opts.DeletePolicy != object.DeleteRestrict {
		db.store.SetDeletePolicy(opts.DeletePolicy)
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cadcam: %w", err)
		}
		log, err := db.recover()
		if err != nil {
			return nil, err
		}
		db.committer = storage.NewGroup(log, storage.GroupConfig{
			SyncCadence: opts.syncCadence(),
			WaitSync:    opts.durable(),
		})
	}
	if db.committer != nil {
		db.store.SetJournal(db.appendOp)
	}
	db.store.SetWriteGuard(func(sur domain.Surrogate) error {
		if db.versions.Frozen(sur) {
			return fmt.Errorf("%w: %s", ErrFrozenVersion, sur)
		}
		return nil
	})
	db.txns = txn.NewManager(store)
	if db.committer != nil {
		// Transaction statements mutate the store directly; the barrier
		// gives them the same per-statement group-commit durability (and
		// fail-fast on a poisoned journal) as facade mutations.
		db.txns.SetDurabilityBarrier(db.waitDurable)
	}
	return db, nil
}

// OpenMemory opens an in-memory database (no persistence).
func OpenMemory(cat *schema.Catalog) (*Database, error) {
	return Open(cat, Options{})
}

// SnapshotFilename, WALFilename, ManifestFilename and SegmentFilename
// name the epoch files a persistent database keeps in its directory.
// Exported for tools (the crash-matrix harness locates the live journal
// with them); the canonical definitions live in internal/wal, shared
// with recovery and the replication shipper. Snapshot files are the
// legacy single-blob checkpoint format, still read but no longer
// written.
func SnapshotFilename(epoch uint64) string { return wal.SnapshotFilename(epoch) }

// WALFilename returns the journal file name of an epoch.
func WALFilename(epoch uint64) string { return wal.WALFilename(epoch) }

// ManifestFilename returns the checkpoint manifest file name of an epoch.
func ManifestFilename(epoch uint64) string { return wal.ManifestFilename(epoch) }

// SegmentFilename returns the file name of shard partition `part`'s
// segment encoded at an epoch.
func SegmentFilename(epoch uint64, part int) string {
	return wal.SegmentFilename(epoch, part)
}

func (db *Database) snapPath(epoch uint64) string {
	return filepath.Join(db.dir, SnapshotFilename(epoch))
}

func (db *Database) walPath(epoch uint64) string {
	return filepath.Join(db.dir, WALFilename(epoch))
}

func (db *Database) manifestPath(epoch uint64) string {
	return filepath.Join(db.dir, ManifestFilename(epoch))
}

func (db *Database) segPath(epoch uint64, part int) string {
	return filepath.Join(db.dir, SegmentFilename(epoch, part))
}

// epochFilePrefixes are the file-name prefixes recovery and checkpoint
// GC own; nothing else in a database directory is ever removed.
var epochFilePrefixes = [...]string{"snap-", "wal-", "manifest-", "seg-"}

func isEpochFile(name string) bool {
	for _, p := range epochFilePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// ScanState is what ScanJournal reads out of a database directory: the
// decoded checkpoint state (nil for a fresh directory) and the journal
// records replayed on top of it.
type ScanState struct {
	// Epoch is the checkpoint epoch the state was loaded at (the first
	// epoch of the journal chain).
	Epoch uint64
	// Store and Versions are the checkpoint state; both nil when the
	// directory has no checkpoint.
	Store    *object.StoreState
	Versions *version.ManagerState
	// Records is the journal chain in append order, batch frames
	// expanded; decode each with oplog.Decode.
	Records [][]byte
}

// ScanJournal reads the persistent state of a database directory without
// opening a database. The crash-recovery harness replays the records
// against its model oracle. Like recovery, scanning truncates a torn
// journal tail in place.
func ScanJournal(dir string) (*ScanState, error) {
	ds, err := wal.LoadDirState(dir, 0, true)
	if err != nil {
		return nil, err
	}
	if cerr := ds.Log.Close(); cerr != nil {
		return nil, cerr
	}
	return &ScanState{Epoch: ds.StateEpoch, Store: ds.Store, Versions: ds.Versions, Records: ds.Records}, nil
}

// recover finds the newest valid checkpoint, imports it (segments
// decoded and objects constructed in parallel), replays the journal
// chain on top (shard-parallel where the record mix allows, see
// wal.ReplayN), and removes stale files from older epochs. It returns
// the opened live journal, which the caller hands to the group
// committer.
func (db *Database) recover() (*storage.Log, error) {
	workers := db.opts.workers()
	ds, err := wal.LoadDirState(db.dir, workers, true)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	if ds.Store != nil {
		if err := db.store.ImportParallel(ds.Store, workers); err != nil {
			ds.Log.Close()
			return nil, fmt.Errorf("cadcam: checkpoint epoch %d: %w", ds.StateEpoch, err)
		}
		if err := db.versions.Import(ds.Versions); err != nil {
			ds.Log.Close()
			return nil, fmt.Errorf("cadcam: checkpoint epoch %d: %w", ds.StateEpoch, err)
		}
	}
	if err := wal.ReplayN(ds.Records, db.store, db.versions, workers); err != nil {
		ds.Log.Close()
		return nil, fmt.Errorf("cadcam: %w", err)
	}
	db.epoch = ds.LiveEpoch
	if ds.FromManifest && len(ds.SegEpochs) == db.store.Shards() {
		// Segment reuse carries across restarts: the dirty counters
		// restart at zero, and replaying the journal tail re-dirties
		// exactly the shards whose on-disk segments are now stale, so the
		// next checkpoint re-encodes those and keeps the rest.
		db.manifestEpoch = ds.StateEpoch
		db.segEpochs = append([]uint64(nil), ds.SegEpochs...)
		db.ckptBaseline = make([]uint64, db.store.Shards())
	}
	db.statMu.Lock()
	db.recStats = RecoveryStats{
		Segments:  ds.Segments,
		DecodeNs:  ds.DecodeNs,
		ReplayOps: len(ds.Records),
		ReplayNs:  time.Since(t0).Nanoseconds(),
		Workers:   workers,
	}
	db.statMu.Unlock()
	db.gcStale(ds)
	return ds.Log, nil
}

// gcStale removes every epoch file the recovered state does not
// reference: older (or orphaned newer) checkpoints, segments no current
// manifest points at, and journals below the chain. Best-effort; a
// leftover file is re-collected by the next recovery or checkpoint.
func (db *Database) gcStale(ds *wal.DirState) {
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	keep := make(map[string]bool)
	if ds.Store != nil {
		if ds.FromManifest {
			keep[ManifestFilename(ds.StateEpoch)] = true
			for p, se := range ds.SegEpochs {
				keep[SegmentFilename(se, p)] = true
			}
		} else {
			keep[SnapshotFilename(ds.StateEpoch)] = true
		}
	}
	for e := ds.StateEpoch; e <= ds.LiveEpoch; e++ {
		keep[WALFilename(e)] = true
	}
	for _, e := range entries {
		if name := e.Name(); isEpochFile(name) && !keep[name] {
			_ = os.Remove(filepath.Join(db.dir, name))
		}
	}
}

// appendOp is the store's journal hook; it runs inside the emitting
// shard's critical section (or under db.mu for version ops), so it only
// clones the op and enqueues it — encoding and I/O happen on the
// committing goroutine, outside every store lock. With sharded writers
// the journal's append order is arrival order, which can differ from
// store-sequence order across shards; each op carries the sequence it
// consumed (op.Seq), and replay re-primes the counter per op, so recovery
// is deterministic regardless of the interleaving (see wal.Replay).
func (db *Database) appendOp(op *oplog.Op) {
	if db.committer == nil {
		return
	}
	db.committer.Enqueue(op.Clone())
	db.opsSinceCheckpoint.Add(1)
}

// waitDurable blocks until every journal record enqueued so far is
// durable per the configured durability mode, surfacing the sticky
// journal error. Mutating facade methods call it after the store call
// returns (no store lock held), so concurrent mutations coalesce into
// one batch and one fsync.
func (db *Database) waitDurable() error {
	if db.committer == nil {
		return nil
	}
	return db.committer.CommitTail()
}

// afterWrite completes a facade mutation: on success it waits for
// group-commit durability, then applies the auto-checkpoint policy.
func (db *Database) afterWrite(err error) error {
	if err == nil {
		err = db.waitDurable()
	}
	db.maybeCheckpoint()
	return err
}

// Err reports the first journaling error, if any. A non-nil result means
// durability is compromised and the database should be closed; mutating
// facade methods fail fast with this error once it is set.
func (db *Database) Err() error {
	if db.committer == nil {
		return nil
	}
	return db.committer.Err()
}

// CheckpointErr reports the sticky error of the most recent failed
// checkpoint — nil once a later checkpoint succeeds. While set, the
// journal is still growing past its compaction point: the database is
// consistent and durable, but recovery replays a longer chain.
func (db *Database) CheckpointErr() error {
	db.statMu.Lock()
	defer db.statMu.Unlock()
	return db.ckptErr
}

// noteCheckpoint records a checkpoint outcome in the stats counters.
func (db *Database) noteCheckpoint(written, skipped int, bytes uint64, err error) {
	db.statMu.Lock()
	defer db.statMu.Unlock()
	if err != nil {
		db.ckptStats.Failures++
		db.ckptStats.LastError = err.Error()
		db.ckptErr = fmt.Errorf("cadcam: checkpoint failed, journal compaction stalled: %w", err)
		return
	}
	db.ckptStats.Checkpoints++
	db.ckptStats.SegmentsWritten += uint64(written)
	db.ckptStats.SegmentsSkipped += uint64(skipped)
	db.ckptStats.BytesEncoded += bytes
	db.ckptStats.LastError = ""
	db.ckptErr = nil
}

// Checkpoint compacts the journal into the incremental checkpoint: it
// rotates the journal and pins an MVCC snapshot under the store's
// exclusive lock, then — with writers running again — exports the dirty
// shards' records from the snapshot, encodes a segment for every shard
// dirtied since its last encoded segment, writes the manifest binding
// segments to the new journal epoch, and garbage-collects what the
// manifest no longer references. Concurrent mutations block only for
// the journal rotation itself (Stats().Checkpoint.LockHoldNs); the
// record capture runs on the snapshot, off the lock.
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *Database) checkpointLocked() error {
	if db.dir == "" {
		return nil // in-memory: nothing to do
	}
	if db.closed {
		return fmt.Errorf("cadcam: database closed")
	}
	next := db.epoch + 1
	var vs *version.ManagerState
	swapped := false
	pc, err := db.store.PinCheckpoint(db.ckptBaseline, func() error {
		// Version mutations go through db.mu (held) and store mutations
		// are excluded, so both exports are mutually consistent — and no
		// Enqueue can race the pipeline drain below.
		//
		// Drain the pipeline first: every record enqueued before this
		// exclusive section must land in the outgoing epoch's log, never
		// the new one (replayed against the new checkpoint it would apply
		// twice).
		if err := db.committer.Flush(); err != nil {
			return err
		}
		vs = db.versions.Export()
		newLog, records, err := storage.OpenLog(db.walPath(next))
		if err != nil {
			return err
		}
		if len(records) != 0 {
			// A stale log from a crashed previous checkpoint: discard it.
			if err := newLog.Reset(); err != nil {
				newLog.Close()
				return err
			}
		}
		old, err := db.committer.SwapLog(newLog)
		if err != nil {
			newLog.Close()
			return err
		}
		// The outgoing log stays on disk: until the manifest below
		// commits, it is part of the journal chain recovery replays on
		// top of the previous checkpoint.
		_ = old.Close()
		swapped = true
		return fpCheckpointGap.Hit()
	})
	if swapped {
		// The rotation is irrevocable: records now land in the new
		// epoch's log, and recovery replays the whole chain whether or
		// not the manifest commits, so the epoch advances on every
		// post-swap path, success or failure.
		db.epoch = next
		db.opsSinceCheckpoint.Store(0)
	}
	if err != nil {
		db.noteCheckpoint(0, 0, 0, err)
		return err
	}
	db.statMu.Lock()
	db.ckptStats.LockHoldNs = pc.LockHoldNs
	if pc.LockHoldNs > db.ckptStats.MaxLockHoldNs {
		db.ckptStats.MaxLockHoldNs = pc.LockHoldNs
	}
	db.statMu.Unlock()
	// The flush above drained every record at or below the pin into the
	// outgoing log, and the swap directs everything after it to the new
	// one, so the snapshot's records are exactly the state the rotated
	// journal chain reproduces. Writers are live again: the export walks
	// the version chains at the pinned sequence while they mutate.
	ex := pc.Snap.ExportShards(pc.Marks, pc.Dirty)
	pc.Snap.Release()
	return db.publishCheckpoint(next, ex, vs)
}

// publishCheckpoint encodes the dirty shards' segments, writes them and
// the committing manifest, and garbage-collects everything the manifest
// no longer references. It runs after the journal rotation with no store
// lock held — writers proceed concurrently — but under db.mu, so
// checkpoints serialize. Until the manifest rename lands, the directory
// still recovers from the previous checkpoint plus the journal chain; a
// failure here therefore only removes the new segments and reports.
func (db *Database) publishCheckpoint(next uint64, ex *object.StoreExport, vs *version.ManagerState) error {
	parts := len(ex.Shards)
	segEpochs := make([]uint64, parts)
	marks := make([]uint64, parts)
	var dirty []int
	for i := range ex.Shards {
		marks[i] = ex.Shards[i].Mark
		if ex.Shards[i].Exported {
			segEpochs[i] = next
			dirty = append(dirty, i)
		} else {
			segEpochs[i] = db.segEpochs[i]
		}
	}
	abandon := func(err error) error {
		for _, p := range dirty {
			_ = os.Remove(db.segPath(next, p))
		}
		db.noteCheckpoint(0, 0, 0, err)
		return err
	}

	var bytesEncoded atomic.Uint64
	workers := runtime.GOMAXPROCS(0)
	if workers > len(dirty) {
		workers = len(dirty)
	}
	errs := make([]error, len(dirty))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for di := w; di < len(dirty); di += workers {
				p := dirty[di]
				blob := wal.EncodeSegment(p, ex.Shards[p].Objects, ex.Shards[p].Bindings)
				bytesEncoded.Add(uint64(len(blob)))
				if err := fpSegmentWrite.Hit(); err != nil {
					errs[di] = err
					return
				}
				if err := storage.WriteSnapshot(db.segPath(next, p), blob); err != nil {
					errs[di] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return abandon(err)
		}
	}

	blob := wal.EncodeManifest(&wal.Manifest{Epoch: next, SegEpochs: segEpochs, Base: ex.Base, Versions: vs})
	bytesEncoded.Add(uint64(len(blob)))
	if err := fpManifestSwap.Hit(); err != nil {
		return abandon(err)
	}
	if err := storage.WriteSnapshot(db.manifestPath(next), blob); err != nil {
		return abandon(err)
	}

	// The manifest rename is the commit point: from here the checkpoint
	// is the directory's newest recoverable state, and the segment-reuse
	// baseline advances with it.
	db.manifestEpoch = next
	db.segEpochs = segEpochs
	db.ckptBaseline = marks
	db.noteCheckpoint(len(dirty), parts-len(dirty), bytesEncoded.Load(), nil)

	if err := fpSegmentGC.Hit(); err != nil {
		// The checkpoint committed; only the cleanup was skipped. Stale
		// files linger until the next checkpoint or recovery collects
		// them. Reported (and counted) so the leak is observable.
		db.noteCheckpoint(0, 0, 0, err)
		return err
	}
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return nil // best-effort GC
	}
	keep := map[string]bool{
		ManifestFilename(next): true,
		WALFilename(next):      true,
	}
	for p, se := range segEpochs {
		keep[SegmentFilename(se, p)] = true
	}
	for _, e := range entries {
		if name := e.Name(); isEpochFile(name) && !keep[name] {
			_ = os.Remove(filepath.Join(db.dir, name))
		}
	}
	return nil
}

// maybeCheckpoint runs an automatic checkpoint when configured. A
// failure no longer vanishes: checkpointLocked records it in
// Stats().Checkpoint and keeps CheckpointErr set until a later
// checkpoint succeeds, while the journal keeps the database durable.
func (db *Database) maybeCheckpoint() {
	if db.opts.CheckpointEvery > 0 && int(db.opsSinceCheckpoint.Load()) >= db.opts.CheckpointEvery {
		_ = db.Checkpoint() // outcome recorded in checkpoint stats
	}
}

// Close syncs and closes the journal. The database must not be used
// afterwards.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	db.store.SetJournal(nil)
	if db.committer != nil {
		// Close drains and fsyncs the queue before closing the log, so
		// every acknowledged (and every queued async) mutation is on disk.
		return db.committer.Close()
	}
	return nil
}
