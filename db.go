// Package cadcam is an object-oriented engineering database implementing
// the model of "Complex and Composite Objects in CAD/CAM Databases"
// (Wilkes, Klahold, Schlageter, 1988/89): complex objects with local
// subobjects and relationships, first-class relationship objects, and —
// the paper's central contribution — inheritance relationships between
// objects that carry attribute *values* from a transmitter to its
// inheritors with selective permeability, modelling both the
// interface/implementation relationship and composite objects with one
// mechanism.
//
// A Database bundles the schema catalog, the object store, the version
// manager, the transaction manager and the persistence layer:
//
//	cat, _ := ddl.Parse(schemaText)            // or a schema.Catalog built in Go
//	db, _ := cadcam.Open(cat, cadcam.Options{Dir: "data"})
//	defer db.Close()
//	iface, _ := db.NewObject("GateInterface", "")
//	impl, _ := db.NewObject("GateImplementation", "")
//	db.Bind("AllOf_GateInterface", impl, iface)
//
// Durability model: every mutation performed through the Database (or
// directly on its Store) is journaled in execution order to a
// CRC-framed, fsynced log and replayed deterministically on Open;
// Checkpoint compacts the journal into an atomic snapshot. Transactions
// (Begin) provide strict two-phase locking with portion locks, lock
// inheritance and expansion locking over the in-memory image; their
// journal records include compensating operations on abort, so the
// journal always reproduces the exact store state. Statement-level
// durability is the recovery unit — a transaction open at crash time is
// replayed up to its last statement; use Workspaces (checkout/checkin)
// for all-or-nothing publication of long design sessions.
package cadcam

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/fault"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/schema"
	"cadcam/internal/storage"
	"cadcam/internal/txn"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// fpCheckpointGap crashes (or fails) a checkpoint after the new epoch's
// snapshot is durable but before the journal swap: recovery must pick
// the newer snapshot and discard the stale previous-epoch files.
var fpCheckpointGap = fault.New("db/checkpoint-gap")

// ErrFrozenVersion reports a write to an object frozen by the version
// manager.
var ErrFrozenVersion = errors.New("cadcam: version is frozen")

// Durability selects when a mutation is acknowledged relative to journal
// I/O.
type Durability int

const (
	// DurabilityAuto derives the mode from SyncEvery: sync when the
	// effective cadence is 1 (the durable default), async otherwise.
	DurabilityAuto Durability = iota
	// DurabilitySync acknowledges a mutation only after the group-commit
	// batch carrying its journal record is written and fsynced.
	DurabilitySync
	// DurabilityAsync acknowledges a mutation once its record is queued;
	// the committer writes and fsyncs in the background per SyncEvery.
	DurabilityAsync
)

// Options configures Open.
type Options struct {
	// Dir is the persistence directory; "" opens an in-memory database.
	Dir string
	// SyncEvery controls the journal fsync cadence. One rule, applied
	// identically at Open, at every checkpoint epoch swap, and inside the
	// group-commit pipeline:
	//
	//	 0  (default) → cadence 1: every commit batch is fsynced
	//	 n ≥ 1        → fsync after at least n journaled records
	//	 n < 0        → never fsync on append (Close/Checkpoint still sync)
	SyncEvery int
	// Durability selects sync-per-batch (durable) vs async
	// acknowledgment; the default derives it from SyncEvery.
	Durability Durability
	// CheckpointEvery, when > 0, triggers an automatic checkpoint after
	// that many journaled operations.
	CheckpointEvery int
	// DeletePolicy is the transmitter delete policy (default
	// DeleteRestrict).
	DeletePolicy object.DeletePolicy
	// Shards is the object-store shard count (0 = default, currently 16).
	// Operations on objects in different shards take different locks;
	// snapshots are shard-agnostic, so a database written with one count
	// reopens cleanly with another.
	Shards int
}

// syncCadence normalizes SyncEvery to the pipeline's fsync cadence:
// records per fsync, 0 meaning "never on append".
func (o Options) syncCadence() int {
	switch {
	case o.SyncEvery == 0:
		return 1
	case o.SyncEvery < 0:
		return 0
	default:
		return o.SyncEvery
	}
}

// durable reports whether mutations wait for their group-commit batch.
func (o Options) durable() bool {
	switch o.Durability {
	case DurabilitySync:
		return true
	case DurabilityAsync:
		return false
	default:
		return o.syncCadence() == 1
	}
}

// Database is one open CAD/CAM database.
type Database struct {
	cat      *schema.Catalog
	store    *object.Store
	versions *version.Manager
	txns     *txn.Manager

	// mu serializes version-manager mutations, checkpoints and Close
	// against each other. Store mutations do not take it (the store
	// serializes itself and journals under its own lock).
	mu sync.Mutex

	dir   string
	epoch uint64
	opts  Options

	// committer is the group-commit journal pipeline (nil in-memory).
	// Mutations enqueue their op under the store mutex — fixing the
	// deterministic replay order — and wait for durability outside it.
	committer *storage.Group

	opsSinceCheckpoint atomic.Int64
	closed             bool
}

// Open creates or recovers a database over a validated catalog.
func Open(cat *schema.Catalog, opts Options) (*Database, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	store, err := object.NewStoreShards(cat, opts.Shards)
	if err != nil {
		return nil, err
	}
	db := &Database{
		cat:      cat,
		store:    store,
		versions: version.NewManager(store),
		dir:      opts.Dir,
		opts:     opts,
	}
	// The policy option must be in force *before* replay: journaled Delete
	// ops were validated under it live, and re-validating them under the
	// default would reject a journal the database itself wrote. A policy
	// change journaled mid-run still replays on top, in order, exactly as
	// it happened live. No journal is attached yet, so the override itself
	// (an Open-time option, re-supplied on every Open) is not journaled.
	if opts.DeletePolicy != object.DeleteRestrict {
		db.store.SetDeletePolicy(opts.DeletePolicy)
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cadcam: %w", err)
		}
		log, err := db.recover()
		if err != nil {
			return nil, err
		}
		db.committer = storage.NewGroup(log, storage.GroupConfig{
			SyncCadence: opts.syncCadence(),
			WaitSync:    opts.durable(),
		})
	}
	if db.committer != nil {
		db.store.SetJournal(db.appendOp)
	}
	db.store.SetWriteGuard(func(sur domain.Surrogate) error {
		if db.versions.Frozen(sur) {
			return fmt.Errorf("%w: %s", ErrFrozenVersion, sur)
		}
		return nil
	})
	db.txns = txn.NewManager(store)
	if db.committer != nil {
		// Transaction statements mutate the store directly; the barrier
		// gives them the same per-statement group-commit durability (and
		// fail-fast on a poisoned journal) as facade mutations.
		db.txns.SetDurabilityBarrier(db.waitDurable)
	}
	return db, nil
}

// OpenMemory opens an in-memory database (no persistence).
func OpenMemory(cat *schema.Catalog) (*Database, error) {
	return Open(cat, Options{})
}

// SnapshotFilename and WALFilename name the epoch files a persistent
// database keeps in its directory. Exported for tools (the crash-matrix
// harness locates the live journal with them).
func SnapshotFilename(epoch uint64) string { return fmt.Sprintf("snap-%08d.snap", epoch) }

// WALFilename returns the journal file name of an epoch.
func WALFilename(epoch uint64) string { return fmt.Sprintf("wal-%08d.log", epoch) }

func (db *Database) snapPath(epoch uint64) string {
	return filepath.Join(db.dir, SnapshotFilename(epoch))
}

func (db *Database) walPath(epoch uint64) string {
	return filepath.Join(db.dir, WALFilename(epoch))
}

// openState locates the newest valid snapshot epoch in dir and opens its
// journal: the single source of truth for what persistent state a
// directory holds, shared by recovery and by ScanJournal. A torn tail of
// the journal is truncated (as recovery would). The returned log is open;
// the caller owns it.
func openState(dir string) (epoch uint64, snapshot []byte, log *storage.Log, records [][]byte, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, nil, nil, nil, fmt.Errorf("cadcam: %w", err)
	}
	var epochs []uint64
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "snap-%d.snap", &n); err == nil {
			epochs = append(epochs, n)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	for _, e := range epochs {
		blob, err := storage.ReadSnapshot(filepath.Join(dir, SnapshotFilename(e)))
		if err != nil || blob == nil {
			continue // corrupt or vanished snapshot: fall back
		}
		epoch, snapshot = e, blob
		break
	}
	log, records, err = storage.OpenLog(filepath.Join(dir, WALFilename(epoch)))
	if err != nil {
		return 0, nil, nil, nil, err
	}
	return epoch, snapshot, log, records, nil
}

// ScanJournal reads the persistent state of a database directory without
// opening a database: the newest valid snapshot blob (nil if none) and
// the journal records of its epoch, batch frames expanded, in append
// order. The crash-recovery harness replays these records against its
// model oracle; decode each with oplog.Decode. Like recovery, scanning
// truncates a torn journal tail in place.
func ScanJournal(dir string) (epoch uint64, snapshot []byte, records [][]byte, err error) {
	epoch, snapshot, log, records, err := openState(dir)
	if err != nil {
		return 0, nil, nil, err
	}
	if cerr := log.Close(); cerr != nil {
		return 0, nil, nil, cerr
	}
	return epoch, snapshot, records, nil
}

// recover finds the newest valid snapshot epoch, loads it, replays its
// journal, and removes stale files from older epochs. It returns the
// opened journal, which the caller hands to the group committer.
func (db *Database) recover() (*storage.Log, error) {
	epoch, snapshot, log, records, err := openState(db.dir)
	if err != nil {
		return nil, err
	}
	db.epoch = epoch
	if snapshot != nil {
		if err := wal.DecodeSnapshot(snapshot, db.store, db.versions); err != nil {
			log.Close()
			return nil, fmt.Errorf("cadcam: snapshot epoch %d: %w", epoch, err)
		}
	}
	if err := wal.Replay(records, db.store, db.versions); err != nil {
		log.Close()
		return nil, fmt.Errorf("cadcam: %w", err)
	}
	// Remove files from other epochs (old, or half-written newer ones).
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("cadcam: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		keepSnap := name == SnapshotFilename(db.epoch)
		keepWal := name == WALFilename(db.epoch)
		isOurs := len(name) > 4 && (name[:5] == "snap-" || name[:4] == "wal-")
		if isOurs && !keepSnap && !keepWal {
			_ = os.Remove(filepath.Join(db.dir, name))
		}
	}
	return log, nil
}

// appendOp is the store's journal hook; it runs inside the emitting
// shard's critical section (or under db.mu for version ops), so it only
// clones the op and enqueues it — encoding and I/O happen on the
// committing goroutine, outside every store lock. With sharded writers
// the journal's append order is arrival order, which can differ from
// store-sequence order across shards; each op carries the sequence it
// consumed (op.Seq), and replay re-primes the counter per op, so recovery
// is deterministic regardless of the interleaving (see wal.Replay).
func (db *Database) appendOp(op *oplog.Op) {
	if db.committer == nil {
		return
	}
	db.committer.Enqueue(op.Clone())
	db.opsSinceCheckpoint.Add(1)
}

// waitDurable blocks until every journal record enqueued so far is
// durable per the configured durability mode, surfacing the sticky
// journal error. Mutating facade methods call it after the store call
// returns (no store lock held), so concurrent mutations coalesce into
// one batch and one fsync.
func (db *Database) waitDurable() error {
	if db.committer == nil {
		return nil
	}
	return db.committer.CommitTail()
}

// afterWrite completes a facade mutation: on success it waits for
// group-commit durability, then applies the auto-checkpoint policy.
func (db *Database) afterWrite(err error) error {
	if err == nil {
		err = db.waitDurable()
	}
	db.maybeCheckpoint()
	return err
}

// Err reports the first journaling error, if any. A non-nil result means
// durability is compromised and the database should be closed; mutating
// facade methods fail fast with this error once it is set.
func (db *Database) Err() error {
	if db.committer == nil {
		return nil
	}
	return db.committer.Err()
}

// Checkpoint atomically writes a snapshot of the full state and starts a
// fresh journal epoch. Concurrent mutations block for the duration.
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *Database) checkpointLocked() error {
	if db.dir == "" {
		return nil // in-memory: nothing to do
	}
	if db.closed {
		return fmt.Errorf("cadcam: database closed")
	}
	return db.store.WithExclusive(func(st *object.StoreState) error {
		// Version mutations go through db.mu (held) and store mutations
		// are excluded, so both exports are mutually consistent — and no
		// Enqueue can race the pipeline drain below.
		//
		// Drain the pipeline first: every record enqueued before this
		// exclusive section must land in the outgoing epoch's log, never
		// the new one (replayed against the new snapshot it would apply
		// twice).
		if err := db.committer.Flush(); err != nil {
			return err
		}
		blob := wal.EncodeSnapshot(st, db.versions.Export())
		next := db.epoch + 1
		if err := storage.WriteSnapshot(db.snapPath(next), blob); err != nil {
			return err
		}
		// From here until the swap succeeds, a *failure* (not a crash) must
		// remove the new snapshot again: the database keeps journaling into
		// the old epoch, and a newer valid snapshot left behind would shadow
		// that journal at the next recovery, silently dropping every
		// mutation acknowledged after the failed checkpoint. A crash inside
		// the window is safe without cleanup — the flushed old journal and
		// the new snapshot describe the same state.
		abandon := func(err error) error {
			_ = os.Remove(db.snapPath(next))
			return err
		}
		if err := fpCheckpointGap.Hit(); err != nil {
			return abandon(err)
		}
		newLog, records, err := storage.OpenLog(db.walPath(next))
		if err != nil {
			return abandon(err)
		}
		if len(records) != 0 {
			// A stale log from a crashed previous checkpoint: discard it.
			if err := newLog.Reset(); err != nil {
				newLog.Close()
				return abandon(err)
			}
		}
		old, err := db.committer.SwapLog(newLog)
		if err != nil {
			newLog.Close()
			return abandon(err)
		}
		_ = old.Close()
		_ = os.Remove(db.walPath(db.epoch))
		_ = os.Remove(db.snapPath(db.epoch))
		db.epoch = next
		db.opsSinceCheckpoint.Store(0)
		return nil
	})
}

// maybeCheckpoint runs an automatic checkpoint when configured.
func (db *Database) maybeCheckpoint() {
	if db.opts.CheckpointEvery > 0 && int(db.opsSinceCheckpoint.Load()) >= db.opts.CheckpointEvery {
		_ = db.Checkpoint()
	}
}

// Close syncs and closes the journal. The database must not be used
// afterwards.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	db.store.SetJournal(nil)
	if db.committer != nil {
		// Close drains and fsyncs the queue before closing the log, so
		// every acknowledged (and every queued async) mutation is on disk.
		return db.committer.Close()
	}
	return nil
}
